#include "machdep/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <sstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#endif

#include "machdep/arena.hpp"
#include "machdep/shm.hpp"
#include "util/check.hpp"
#include "util/timing.hpp"

namespace force::machdep::cluster {

// ---------------------------------------------------------------------------
// DSM building blocks (pure).
// ---------------------------------------------------------------------------
namespace dsm {

std::vector<Record> diff(const unsigned char* data, std::size_t n,
                         std::vector<unsigned char>* shadow) {
  if (shadow->size() < n) shadow->resize(n, 0);
  std::vector<Record> out;
  std::size_t i = 0;
  while (i < n) {
    if (data[i] == (*shadow)[i]) {
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    while (j < n && data[j] != (*shadow)[j]) ++j;
    Record rec;
    rec.offset = i;
    rec.bytes.assign(data + i, data + j);
    std::memcpy(shadow->data() + i, data + i, j - i);
    out.push_back(std::move(rec));
    i = j;
  }
  return out;
}

void apply(std::vector<unsigned char>* image, const std::vector<Record>& recs,
           std::size_t capacity) {
  for (const Record& rec : recs) {
    const std::size_t end = static_cast<std::size_t>(rec.offset) +
                            rec.bytes.size();
    FORCE_CHECK(rec.offset <= capacity && end <= capacity,
                "cluster DSM record is outside the arena");
    if (image->size() < end) image->resize(end, 0);
    std::memcpy(image->data() + rec.offset, rec.bytes.data(),
                rec.bytes.size());
  }
}

void encode_records(net::Writer* w, const std::vector<Record>& recs) {
  w->u32(static_cast<std::uint32_t>(recs.size()));
  for (const Record& rec : recs) {
    w->u64(rec.offset);
    w->bytes(rec.bytes.data(), rec.bytes.size());
  }
}

bool decode_records(net::Reader* r, std::vector<Record>* out) {
  std::uint32_t count = 0;
  if (!r->u32(&count)) return false;
  out->clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    Record rec;
    if (!r->u64(&rec.offset) || !r->bytes(&rec.bytes)) return false;
    out->push_back(std::move(rec));
  }
  return true;
}

}  // namespace dsm

// ---------------------------------------------------------------------------
// Runtime configuration.
// ---------------------------------------------------------------------------

namespace {
RuntimeConfig g_config;       // what the next cluster run will use
RuntimeConfig g_saved_config; // ScopedRuntimeConfig restore slot
ClusterClient* g_client = nullptr;  // member-process client (post-fork)
}  // namespace

ScopedRuntimeConfig::ScopedRuntimeConfig(RuntimeConfig cfg) {
  g_saved_config = g_config;
  g_config = std::move(cfg);
}

ScopedRuntimeConfig::~ScopedRuntimeConfig() { g_config = g_saved_config; }

const RuntimeConfig& runtime_config() { return g_config; }

ClusterClient* client() { return g_client; }

ClusterClient& require_client() {
  FORCE_CHECK(g_client != nullptr,
              "cluster construct used outside a cluster member process");
  return *g_client;
}

void sever_connection_for_test() {
  if (g_client != nullptr) g_client->sever_connection_for_test();
}

// ---------------------------------------------------------------------------
// Peer-side client.
// ---------------------------------------------------------------------------

ClusterClient::ClusterClient(net::Conn conn, int proc0, SharedArena* arena)
    : conn_(std::move(conn)), proc0_(proc0), arena_(arena) {
  if (arena_ != nullptr) {
    // The shadow starts as a full copy of the already-used arena so the
    // first flush diffs against real initial contents, not zeros - a
    // zeroed shadow would make the first flush re-send (and potentially
    // clobber) every nonzero byte the parent initialized before the fork.
    const std::size_t used = arena_->bytes_used();
    const auto* base = reinterpret_cast<const unsigned char*>(
        arena_->raw_bytes());
    shadow_.assign(base, base + used);
  }
  handshake();
}

void ClusterClient::handshake() {
  net::Writer w;
  w.u32(static_cast<std::uint32_t>(proc0_));
  conn_.send_frame(net::MsgType::kHello, w.data());
  std::vector<unsigned char> payload;
  recv_expect({net::MsgType::kHelloAck}, &payload);
}

net::MsgType ClusterClient::recv_expect(
    std::initializer_list<net::MsgType> allowed,
    std::vector<unsigned char>* payload) {
  for (;;) {
    net::MsgType type;
    const bool got = conn_.recv_frame(&type, payload);
    FORCE_CHECK(got, "cluster coordinator connection closed (the parent "
                     "process is gone)");
    if (type == net::MsgType::kPoison) throw shm::TeamPoisoned();
    for (net::MsgType a : allowed) {
      if (type == a) return type;
    }
    FORCE_CHECK(false, "unexpected frame type from the cluster coordinator");
  }
}

void ClusterClient::note_site(const std::string& site) {
  if (site == last_site_) return;
  last_site_ = site;
  net::Writer w;
  w.str(site);
  conn_.send_frame(net::MsgType::kSite, w.data());
}

void ClusterClient::apply_record(std::uint64_t offset,
                                 const unsigned char* data, std::size_t n) {
  if (arena_ == nullptr || n == 0) return;
  const std::size_t used = arena_->bytes_used();
  if (offset >= used) {
    // Ahead of this peer's local allocation cursor: hold it until the
    // allocation (and its constructor) has run here, then overlay.
    pending_.push_back({offset, std::vector<unsigned char>(data, data + n)});
    return;
  }
  const std::size_t can =
      std::min<std::size_t>(n, used - static_cast<std::size_t>(offset));
  auto* base = reinterpret_cast<unsigned char*>(arena_->raw_bytes());
  std::memcpy(base + offset, data, can);
  if (shadow_.size() < offset + can) shadow_.resize(offset + can, 0);
  std::memcpy(shadow_.data() + offset, data, can);
  if (can < n) {
    pending_.push_back(
        {offset + can, std::vector<unsigned char>(data + can, data + n)});
  }
}

void ClusterClient::drain_pending() {
  if (pending_.empty()) return;
  std::vector<dsm::Record> retry = std::move(pending_);
  pending_.clear();
  for (const dsm::Record& rec : retry) {
    apply_record(rec.offset, rec.bytes.data(), rec.bytes.size());
  }
}

void ClusterClient::flush() {
  if (arena_ == nullptr) return;
  drain_pending();
  const std::size_t used = arena_->bytes_used();
  const auto* base =
      reinterpret_cast<const unsigned char*>(arena_->raw_bytes());
  const std::vector<dsm::Record> recs = dsm::diff(base, used, &shadow_);
  if (recs.empty()) return;
  net::Writer w;
  dsm::encode_records(&w, recs);
  conn_.send_frame(net::MsgType::kUpdates, w.data());
}

void ClusterClient::apply_updates(net::Reader* r) {
  std::vector<dsm::Record> recs;
  FORCE_CHECK(dsm::decode_records(r, &recs),
              "malformed update records from the cluster coordinator");
  if (arena_ == nullptr) return;
  drain_pending();
  for (const dsm::Record& rec : recs) {
    apply_record(rec.offset, rec.bytes.data(), rec.bytes.size());
  }
}

void ClusterClient::barrier_arrive(const std::string& key, int width,
                                   const std::function<void()>* section) {
  flush();
  net::Writer w;
  w.str(key);
  w.u32(static_cast<std::uint32_t>(width));
  w.u8(section != nullptr ? 1 : 0);
  conn_.send_frame(net::MsgType::kBarrierArrive, w.data());
  std::vector<unsigned char> payload;
  net::MsgType type = recv_expect(
      {net::MsgType::kBarrierRunSection, net::MsgType::kBarrierRelease},
      &payload);
  if (type == net::MsgType::kBarrierRunSection) {
    net::Reader r(payload);
    apply_updates(&r);
    (*section)();
    flush();
    net::Writer done;
    done.str(key);
    conn_.send_frame(net::MsgType::kBarrierSectionDone, done.data());
    recv_expect({net::MsgType::kBarrierRelease}, &payload);
  }
  net::Reader r(payload);
  apply_updates(&r);
}

void ClusterClient::lock_acquire(const std::string& key) {
  flush();
  net::Writer w;
  w.str(key);
  conn_.send_frame(net::MsgType::kLockAcquire, w.data());
  std::vector<unsigned char> payload;
  recv_expect({net::MsgType::kLockGranted}, &payload);
  net::Reader r(payload);
  apply_updates(&r);
}

bool ClusterClient::lock_try_acquire(const std::string& key) {
  flush();
  net::Writer w;
  w.str(key);
  conn_.send_frame(net::MsgType::kLockTry, w.data());
  std::vector<unsigned char> payload;
  recv_expect({net::MsgType::kLockTryReply}, &payload);
  net::Reader r(payload);
  std::uint8_t ok = 0;
  FORCE_CHECK(r.u8(&ok), "malformed lock-try reply");
  if (ok != 0) apply_updates(&r);
  return ok != 0;
}

void ClusterClient::lock_release(const std::string& key) {
  flush();
  net::Writer w;
  w.str(key);
  conn_.send_frame(net::MsgType::kLockRelease, w.data());
}

void ClusterClient::dispatch_reset(const std::string& key) {
  net::Writer w;
  w.str(key);
  conn_.send_frame(net::MsgType::kDispatchReset, w.data());
  std::vector<unsigned char> payload;
  recv_expect({net::MsgType::kDispatchResetAck}, &payload);
}

Claim ClusterClient::dispatch_claim(const std::string& key, std::int64_t want,
                                    std::int64_t limit) {
  return claim_rpc(key, want, limit, 0);
}

Claim ClusterClient::dispatch_claim_fraction(const std::string& key,
                                             std::int64_t limit,
                                             std::int64_t divisor) {
  return claim_rpc(key, 0, limit, divisor);
}

Claim ClusterClient::claim_rpc(const std::string& key, std::int64_t want,
                               std::int64_t limit, std::int64_t divisor) {
  net::Writer w;
  w.str(key);
  w.i64(want);
  w.i64(limit);
  w.i64(divisor);
  conn_.send_frame(net::MsgType::kDispatchClaim, w.data());
  std::vector<unsigned char> payload;
  recv_expect({net::MsgType::kDispatchClaimReply}, &payload);
  net::Reader r(payload);
  Claim c;
  FORCE_CHECK(r.i64(&c.begin) && r.i64(&c.count),
              "malformed dispatch claim reply");
  return c;
}

void ClusterClient::askfor_put(const std::string& key, const void* task,
                               std::size_t n) {
  flush();
  net::Writer w;
  w.str(key);
  w.bytes(task, n);
  conn_.send_frame(net::MsgType::kAskforPut, w.data());
}

bool ClusterClient::askfor_ask(const std::string& key, void* task,
                               std::size_t n) {
  flush();
  net::Writer w;
  w.str(key);
  conn_.send_frame(net::MsgType::kAskforAsk, w.data());
  std::vector<unsigned char> payload;
  recv_expect({net::MsgType::kAskforGrant}, &payload);
  net::Reader r(payload);
  std::uint8_t has = 0;
  FORCE_CHECK(r.u8(&has), "malformed askfor grant");
  apply_updates(&r);
  if (has == 0) return false;
  std::vector<unsigned char> bytes;
  FORCE_CHECK(r.bytes(&bytes) && bytes.size() == n,
              "askfor task payload size mismatch on the wire");
  std::memcpy(task, bytes.data(), n);
  return true;
}

void ClusterClient::askfor_complete(const std::string& key) {
  flush();
  net::Writer w;
  w.str(key);
  conn_.send_frame(net::MsgType::kAskforComplete, w.data());
}

void ClusterClient::askfor_probend(const std::string& key) {
  flush();
  net::Writer w;
  w.str(key);
  conn_.send_frame(net::MsgType::kAskforProbend, w.data());
}

void ClusterClient::askfor_status(const std::string& key, bool* ended,
                                  std::uint64_t* granted) {
  net::Writer w;
  w.str(key);
  conn_.send_frame(net::MsgType::kAskforStatus, w.data());
  std::vector<unsigned char> payload;
  recv_expect({net::MsgType::kAskforStatusReply}, &payload);
  net::Reader r(payload);
  std::uint8_t e = 0;
  std::uint64_t g = 0;
  FORCE_CHECK(r.u8(&e) && r.u64(&g), "malformed askfor status reply");
  *ended = e != 0;
  *granted = g;
}

void ClusterClient::cell_produce(const std::string& key, const void* value,
                                 std::size_t n) {
  flush();
  net::Writer w;
  w.str(key);
  w.bytes(value, n);
  conn_.send_frame(net::MsgType::kCellProduce, w.data());
  std::vector<unsigned char> payload;
  recv_expect({net::MsgType::kCellProduceAck}, &payload);
  net::Reader r(payload);
  apply_updates(&r);
}

namespace {

void read_cell_value(net::Reader* r, void* value, std::size_t n) {
  std::vector<unsigned char> bytes;
  FORCE_CHECK(r->bytes(&bytes) && bytes.size() == n,
              "async value payload size mismatch on the wire");
  std::memcpy(value, bytes.data(), n);
}

}  // namespace

void ClusterClient::cell_consume(const std::string& key, void* value,
                                 std::size_t n) {
  flush();
  net::Writer w;
  w.str(key);
  w.u8(0);
  conn_.send_frame(net::MsgType::kCellConsume, w.data());
  std::vector<unsigned char> payload;
  recv_expect({net::MsgType::kCellValue}, &payload);
  net::Reader r(payload);
  apply_updates(&r);
  read_cell_value(&r, value, n);
}

void ClusterClient::cell_copy(const std::string& key, void* value,
                              std::size_t n) {
  flush();
  net::Writer w;
  w.str(key);
  w.u8(1);
  conn_.send_frame(net::MsgType::kCellConsume, w.data());
  std::vector<unsigned char> payload;
  recv_expect({net::MsgType::kCellValue}, &payload);
  net::Reader r(payload);
  apply_updates(&r);
  read_cell_value(&r, value, n);
}

bool ClusterClient::cell_try_produce(const std::string& key, const void* value,
                                     std::size_t n) {
  flush();
  net::Writer w;
  w.str(key);
  w.bytes(value, n);
  conn_.send_frame(net::MsgType::kCellTryProduce, w.data());
  std::vector<unsigned char> payload;
  recv_expect({net::MsgType::kCellTryReply}, &payload);
  net::Reader r(payload);
  std::uint8_t ok = 0;
  FORCE_CHECK(r.u8(&ok), "malformed async try reply");
  if (ok != 0) apply_updates(&r);
  return ok != 0;
}

bool ClusterClient::cell_try_consume(const std::string& key, void* value,
                                     std::size_t n) {
  flush();
  net::Writer w;
  w.str(key);
  conn_.send_frame(net::MsgType::kCellTryConsume, w.data());
  std::vector<unsigned char> payload;
  recv_expect({net::MsgType::kCellTryReply}, &payload);
  net::Reader r(payload);
  std::uint8_t ok = 0;
  FORCE_CHECK(r.u8(&ok), "malformed async try reply");
  if (ok == 0) return false;
  apply_updates(&r);
  read_cell_value(&r, value, n);
  return true;
}

void ClusterClient::cell_void(const std::string& key) {
  flush();
  net::Writer w;
  w.str(key);
  conn_.send_frame(net::MsgType::kCellVoid, w.data());
  std::vector<unsigned char> payload;
  recv_expect({net::MsgType::kCellVoidAck}, &payload);
}

void ClusterClient::join() {
  flush();
  conn_.send_frame(net::MsgType::kJoin, nullptr, 0);
  std::vector<unsigned char> payload;
  recv_expect({net::MsgType::kJoinAck}, &payload);
}

void ClusterClient::report_error(const std::string& what) noexcept {
  try {
    net::Writer w;
    w.str(what);
    conn_.send_frame(net::MsgType::kError, w.data());
  } catch (...) {
    // Best-effort only: the socket may already be gone.
  }
}

void ClusterClient::sever_connection_for_test() { conn_.shutdown_both(); }

#if defined(__unix__) || defined(__APPLE__)

// ---------------------------------------------------------------------------
// Coordinator.
// ---------------------------------------------------------------------------

namespace {

constexpr std::int64_t kGraceNs = 5'000'000'000;  // SIGKILL stragglers after
constexpr int kPollTickMs = 10;

struct PeerIO {
  net::Conn conn;
  pid_t pid = -1;
  bool joined = false;  // sent kJoin (subsequent EOF is orderly)
  bool eof = false;     // socket is gone
  bool torn = false;    // EOF while the process still ran (half-closed link)
  std::string site = "startup";
  std::string error;
  std::vector<unsigned char> inbuf;
  std::size_t inpos = 0;
  std::size_t synced = 0;  // update-log records this peer has seen
};

struct LockState {
  int held_by = -1;
  std::deque<int> waiters;
};

struct BarrierState {
  std::vector<int> arrivers;
  bool has_section = false;
  bool section_running = false;
};

struct DispatchState {
  std::int64_t value = 0;
};

struct AskforState {
  std::deque<std::vector<unsigned char>> tasks;
  int working = 0;
  std::uint8_t ended = 0;  // 0 open / 1 drained (provisional) / 2 probend
  std::uint64_t granted = 0;
  std::deque<int> parked;
};

struct CellState {
  bool full = false;
  std::vector<unsigned char> payload;
  std::deque<std::pair<int, std::vector<unsigned char>>> producers;
  struct Waiter {
    int peer;
    bool copy;
  };
  std::deque<Waiter> consumers;
};

class Coordinator {
 public:
  struct Death {
    int proc0 = -1;
    pid_t pid = -1;
    int status = 0;
    std::string site;
    std::string error;
  };

  Coordinator(SharedArena* arena, std::vector<net::Conn> conns,
              const std::vector<pid_t>& pids)
      : arena_(arena) {
    peers_.resize(conns.size());
    for (std::size_t i = 0; i < conns.size(); ++i) {
      peers_[i].conn = std::move(conns[i]);
      peers_[i].pid = pids[i];
    }
  }

  /// Serves until every peer is reaped. Returns true when a primary death
  /// was recorded into *death.
  bool serve(Death* death) {
    int live = static_cast<int>(peers_.size());
    std::int64_t poisoned_at = -1;
    bool killed_stragglers = false;
    while (live > 0) {
      poll_and_read();
      // Reap: mirrors the os-fork join. First abnormal status poisons.
      for (std::size_t i = 0; i < peers_.size(); ++i) {
        PeerIO& p = peers_[i];
        if (p.pid <= 0) continue;
        int status = 0;
        const pid_t r = ::waitpid(p.pid, &status, WNOHANG);
        if (r == 0) continue;
        FORCE_CHECK(r == p.pid, "waitpid lost track of a force process");
        // Drain any frames the child managed to send before dying (its
        // kError provenance may still sit in the socket buffer).
        drain_to_eof(static_cast<int>(i));
        const pid_t pid = p.pid;
        p.pid = -1;
        --live;
        const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        const bool collateral = WIFEXITED(status) &&
                                WEXITSTATUS(status) == kPoisonCollateralExit;
        if (!clean && !collateral && death_.proc0 < 0) {
          death_.proc0 = static_cast<int>(i);
          death_.pid = pid;
          death_.status = status;
          death_.site = p.site;
          death_.error = p.error;
          poison_team();
          poisoned_at = util::now_ns();
        }
      }
      // Torn links: EOF from a process that is still running and never
      // joined means the connection died under it. Kill it; the reap above
      // then reports it as the primary death with torn provenance.
      if (!poisoned_) {
        for (PeerIO& p : peers_) {
          if (p.eof && !p.joined && !p.torn && p.pid > 0) {
            p.torn = true;
            if (p.error.empty()) {
              p.error =
                  "connection to the coordinator torn (socket closed "
                  "mid-run)";
            }
            ::kill(p.pid, SIGKILL);
          }
        }
      }
      if (poisoned_at >= 0 && !killed_stragglers &&
          util::now_ns() - poisoned_at > kGraceNs) {
        for (PeerIO& p : peers_) {
          if (p.pid > 0) ::kill(p.pid, SIGKILL);
        }
        killed_stragglers = true;
      }
    }
    *death = death_;
    return death_.proc0 >= 0;
  }

 private:
  // --- transport ----------------------------------------------------------

  void send_to(int peer, net::MsgType type,
               const std::vector<unsigned char>& payload) {
    PeerIO& p = peers_[static_cast<std::size_t>(peer)];
    if (!p.conn.valid() || p.eof) return;
    unsigned char hdr[net::kFrameHeaderBytes];
    net::FrameHeader h;
    h.type = static_cast<std::uint16_t>(type);
    h.payload_bytes = static_cast<std::uint32_t>(payload.size());
    net::encode_frame_header(h, hdr);
    // A failed send means the peer is gone; the reaper owns that story.
    if (!net::send_all(p.conn.fd(), hdr, sizeof hdr)) return;
    if (!payload.empty()) {
      (void)net::send_all(p.conn.fd(), payload.data(), payload.size());
    }
  }

  void poll_and_read() {
    std::vector<pollfd> fds;
    std::vector<int> idx;
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      PeerIO& p = peers_[i];
      if (p.conn.valid() && !p.eof) {
        fds.push_back({p.conn.fd(), POLLIN, 0});
        idx.push_back(static_cast<int>(i));
      }
    }
    if (fds.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(kPollTickMs));
      return;
    }
    const int n = ::poll(fds.data(), fds.size(), kPollTickMs);
    if (n <= 0) return;
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        read_some(idx[k]);
      }
    }
  }

  void read_some(int peer) {
    PeerIO& p = peers_[static_cast<std::size_t>(peer)];
    unsigned char buf[65536];
    const ssize_t r = ::recv(p.conn.fd(), buf, sizeof buf, 0);
    if (r > 0) {
      p.inbuf.insert(p.inbuf.end(), buf, buf + r);
      parse_frames(peer);
      return;
    }
    if (r < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;
    }
    p.eof = true;
    p.conn.close();
  }

  void drain_to_eof(int peer) {
    PeerIO& p = peers_[static_cast<std::size_t>(peer)];
    while (p.conn.valid() && !p.eof) read_some(peer);
  }

  void parse_frames(int peer) {
    PeerIO& p = peers_[static_cast<std::size_t>(peer)];
    for (;;) {
      const std::size_t avail = p.inbuf.size() - p.inpos;
      if (avail < net::kFrameHeaderBytes) break;
      net::FrameHeader h;
      const net::DecodeStatus st =
          net::decode_frame_header(p.inbuf.data() + p.inpos, avail, &h);
      if (st != net::DecodeStatus::kOk) {
        // A child of our own fork never sends garbage; treat the stream as
        // torn rather than taking the coordinator (and the reaper) down.
        if (p.error.empty()) {
          p.error = "malformed frame from peer (protocol corruption)";
        }
        p.eof = true;
        p.conn.close();
        return;
      }
      if (avail - net::kFrameHeaderBytes < h.payload_bytes) break;
      const unsigned char* body =
          p.inbuf.data() + p.inpos + net::kFrameHeaderBytes;
      p.inpos += net::kFrameHeaderBytes + h.payload_bytes;
      handle_frame(peer, static_cast<net::MsgType>(h.type), body,
                   h.payload_bytes);
    }
    if (p.inpos > 0 && p.inpos == p.inbuf.size()) {
      p.inbuf.clear();
      p.inpos = 0;
    } else if (p.inpos > (1u << 20)) {
      p.inbuf.erase(p.inbuf.begin(),
                    p.inbuf.begin() + static_cast<std::ptrdiff_t>(p.inpos));
      p.inpos = 0;
    }
  }

  // --- update log ---------------------------------------------------------

  void append_and_apply(const std::vector<dsm::Record>& recs) {
    for (const dsm::Record& rec : recs) {
      if (arena_ != nullptr) {
        const std::size_t end =
            static_cast<std::size_t>(rec.offset) + rec.bytes.size();
        FORCE_CHECK(end <= arena_->capacity(),
                    "cluster DSM update outside the arena");
        std::memcpy(reinterpret_cast<unsigned char*>(arena_->raw_bytes()) +
                        rec.offset,
                    rec.bytes.data(), rec.bytes.size());
      }
      log_.push_back(rec);
    }
  }

  /// Appends the log suffix this peer has not seen and marks it seen.
  void write_updates(net::Writer* w, int peer) {
    PeerIO& p = peers_[static_cast<std::size_t>(peer)];
    const std::size_t from = std::min(p.synced, log_.size());
    w->u32(static_cast<std::uint32_t>(log_.size() - from));
    for (std::size_t i = from; i < log_.size(); ++i) {
      w->u64(log_[i].offset);
      w->bytes(log_[i].bytes.data(), log_[i].bytes.size());
    }
    p.synced = log_.size();
  }

  // --- construct servicing ------------------------------------------------

  void poison_team() {
    if (poisoned_) return;
    poisoned_ = true;
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      send_to(static_cast<int>(i), net::MsgType::kPoison, {});
    }
  }

  static bool is_reply_expected(net::MsgType t) {
    switch (t) {
      case net::MsgType::kSite:
      case net::MsgType::kError:
      case net::MsgType::kUpdates:
      case net::MsgType::kLockRelease:
      case net::MsgType::kAskforPut:
      case net::MsgType::kAskforComplete:
      case net::MsgType::kAskforProbend:
      case net::MsgType::kPoison:
        return false;
      default:
        return true;
    }
  }

  void handle_frame(int peer, net::MsgType type, const unsigned char* body,
                    std::size_t n) {
    net::Reader r(body, n);
    // Provenance frames are served even after poisoning.
    if (type == net::MsgType::kSite) {
      std::string site;
      if (r.str(&site)) peers_[static_cast<std::size_t>(peer)].site = site;
      return;
    }
    if (type == net::MsgType::kError) {
      std::string what;
      if (r.str(&what)) peers_[static_cast<std::size_t>(peer)].error = what;
      return;
    }
    if (poisoned_) {
      // The team is dead: every parked or future request gets poison so
      // survivors unwind instead of waiting on a construct that will
      // never complete.
      if (is_reply_expected(type)) send_to(peer, net::MsgType::kPoison, {});
      return;
    }
    switch (type) {
      case net::MsgType::kHello: {
        std::uint32_t proc = 0;
        FORCE_CHECK(r.u32(&proc) && proc == static_cast<std::uint32_t>(peer),
                    "cluster hello from the wrong peer");
        send_to(peer, net::MsgType::kHelloAck, {});
        return;
      }
      case net::MsgType::kUpdates: {
        std::vector<dsm::Record> recs;
        if (dsm::decode_records(&r, &recs)) append_and_apply(recs);
        return;
      }
      case net::MsgType::kBarrierArrive: return on_barrier_arrive(peer, &r);
      case net::MsgType::kBarrierSectionDone:
        return on_barrier_section_done(peer, &r);
      case net::MsgType::kLockAcquire: return on_lock_acquire(peer, &r);
      case net::MsgType::kLockTry: return on_lock_try(peer, &r);
      case net::MsgType::kLockRelease: return on_lock_release(peer, &r);
      case net::MsgType::kDispatchReset: {
        std::string key;
        if (!r.str(&key)) return;
        dispatches_[key].value = 0;
        send_to(peer, net::MsgType::kDispatchResetAck, {});
        return;
      }
      case net::MsgType::kDispatchClaim: return on_dispatch_claim(peer, &r);
      case net::MsgType::kAskforPut: return on_askfor_put(peer, &r);
      case net::MsgType::kAskforAsk: return on_askfor_ask(peer, &r);
      case net::MsgType::kAskforComplete: return on_askfor_complete(peer, &r);
      case net::MsgType::kAskforProbend: return on_askfor_probend(peer, &r);
      case net::MsgType::kAskforStatus: {
        std::string key;
        if (!r.str(&key)) return;
        AskforState& st = askfors_[key];
        net::Writer w;
        w.u8(st.ended != 0 ? 1 : 0);
        w.u64(st.granted);
        send_to(peer, net::MsgType::kAskforStatusReply, w.take());
        return;
      }
      case net::MsgType::kCellProduce: return on_cell_produce(peer, &r);
      case net::MsgType::kCellConsume: return on_cell_consume(peer, &r);
      case net::MsgType::kCellTryProduce:
        return on_cell_try_produce(peer, &r);
      case net::MsgType::kCellTryConsume:
        return on_cell_try_consume(peer, &r);
      case net::MsgType::kCellVoid: return on_cell_void(peer, &r);
      case net::MsgType::kJoin: {
        peers_[static_cast<std::size_t>(peer)].joined = true;
        send_to(peer, net::MsgType::kJoinAck, {});
        return;
      }
      default:
        return;  // unknown/unsolicited: ignore (forward compatibility)
    }
  }

  void on_barrier_arrive(int peer, net::Reader* r) {
    std::string key;
    std::uint32_t width = 0;
    std::uint8_t has_section = 0;
    if (!r->str(&key) || !r->u32(&width) || !r->u8(&has_section)) return;
    BarrierState& st = barriers_[key];
    st.arrivers.push_back(peer);
    st.has_section = has_section != 0;
    if (st.arrivers.size() < width) return;
    if (st.has_section) {
      // The last arriver is the champion: it runs the one-process section
      // with every earlier arrival's updates already applied.
      st.section_running = true;
      const int champion = st.arrivers.back();
      net::Writer w;
      write_updates(&w, champion);
      send_to(champion, net::MsgType::kBarrierRunSection, w.take());
      return;
    }
    release_barrier(key);
  }

  void on_barrier_section_done(int /*peer*/, net::Reader* r) {
    std::string key;
    if (!r->str(&key)) return;
    release_barrier(key);
  }

  void release_barrier(const std::string& key) {
    BarrierState& st = barriers_[key];
    for (int arriver : st.arrivers) {
      net::Writer w;
      write_updates(&w, arriver);
      send_to(arriver, net::MsgType::kBarrierRelease, w.take());
    }
    barriers_.erase(key);
  }

  void on_lock_acquire(int peer, net::Reader* r) {
    std::string key;
    if (!r->str(&key)) return;
    LockState& st = locks_[key];
    if (st.held_by < 0) {
      st.held_by = peer;
      net::Writer w;
      write_updates(&w, peer);
      send_to(peer, net::MsgType::kLockGranted, w.take());
    } else {
      st.waiters.push_back(peer);
    }
  }

  void on_lock_try(int peer, net::Reader* r) {
    std::string key;
    if (!r->str(&key)) return;
    LockState& st = locks_[key];
    net::Writer w;
    if (st.held_by < 0) {
      st.held_by = peer;
      w.u8(1);
      write_updates(&w, peer);
    } else {
      w.u8(0);
    }
    send_to(peer, net::MsgType::kLockTryReply, w.take());
  }

  void on_lock_release(int peer, net::Reader* r) {
    std::string key;
    if (!r->str(&key)) return;
    LockState& st = locks_[key];
    if (st.held_by != peer) return;  // stale release from a dying peer
    st.held_by = -1;
    if (!st.waiters.empty()) {
      const int next = st.waiters.front();
      st.waiters.pop_front();
      st.held_by = next;
      net::Writer w;
      write_updates(&w, next);
      send_to(next, net::MsgType::kLockGranted, w.take());
    }
  }

  void on_dispatch_claim(int peer, net::Reader* r) {
    std::string key;
    std::int64_t want = 0, limit = 0, divisor = 0;
    if (!r->str(&key) || !r->i64(&want) || !r->i64(&limit) ||
        !r->i64(&divisor)) {
      return;
    }
    DispatchState& st = dispatches_[key];
    const std::int64_t t = st.value;
    std::int64_t count = 0;
    if (t < limit) {
      // Mirrors DispatchCounter::claim / claim_fraction (locks.cpp):
      // claims tile [0, limit) exactly once, clamped at the limit.
      count = divisor == 0
                  ? std::min(want, limit - t)
                  : std::max<std::int64_t>(1, (limit - t) / divisor);
      st.value = t + count;
    }
    net::Writer w;
    w.i64(t);
    w.i64(count);
    send_to(peer, net::MsgType::kDispatchClaimReply, w.take());
  }

  void grant_task(const std::string& key, AskforState* st, int peer) {
    net::Writer w;
    w.u8(1);
    write_updates(&w, peer);
    w.bytes(st->tasks.front().data(), st->tasks.front().size());
    st->tasks.pop_front();
    ++st->working;
    ++st->granted;
    send_to(peer, net::MsgType::kAskforGrant, w.take());
    (void)key;
  }

  void grant_no_task(int peer) {
    net::Writer w;
    w.u8(0);
    write_updates(&w, peer);
    send_to(peer, net::MsgType::kAskforGrant, w.take());
  }

  void on_askfor_put(int peer, net::Reader* r) {
    std::string key;
    std::vector<unsigned char> task;
    if (!r->str(&key) || !r->bytes(&task)) return;
    AskforState& st = askfors_[key];
    if (st.ended == 2) return;  // probend is final: late puts are dropped
    st.ended = 0;               // a put re-opens a provisionally drained pool
    st.tasks.push_back(std::move(task));
    if (!st.parked.empty()) {
      const int asker = st.parked.front();
      st.parked.pop_front();
      grant_task(key, &st, asker);
    }
    (void)peer;
  }

  void on_askfor_ask(int peer, net::Reader* r) {
    std::string key;
    if (!r->str(&key)) return;
    AskforState& st = askfors_[key];
    if (st.ended != 0) {
      grant_no_task(peer);
      return;
    }
    if (!st.tasks.empty()) {
      grant_task(key, &st, peer);
      return;
    }
    if (st.working > 0) {
      // Someone may still put child tasks; park until put or drain.
      st.parked.push_back(peer);
      return;
    }
    st.ended = 1;  // drained (provisional: a put re-opens)
    grant_no_task(peer);
  }

  void on_askfor_complete(int peer, net::Reader* r) {
    std::string key;
    if (!r->str(&key)) return;
    AskforState& st = askfors_[key];
    if (st.working > 0) --st.working;
    if (st.working == 0 && st.tasks.empty() && st.ended == 0) {
      st.ended = 1;
      for (int asker : st.parked) grant_no_task(asker);
      st.parked.clear();
    }
    (void)peer;
  }

  void on_askfor_probend(int peer, net::Reader* r) {
    std::string key;
    if (!r->str(&key)) return;
    AskforState& st = askfors_[key];
    st.ended = 2;
    st.tasks.clear();
    for (int asker : st.parked) grant_no_task(asker);
    st.parked.clear();
    (void)peer;
  }

  /// Drains a cell's wait queues as far as its full/empty state allows:
  /// a full cell feeds copies and one consume; an empty cell accepts the
  /// next parked producer.
  void settle_cell(CellState* st) {
    for (;;) {
      if (st->full) {
        if (st->consumers.empty()) return;
        const CellState::Waiter wtr = st->consumers.front();
        st->consumers.pop_front();
        net::Writer w;
        write_updates(&w, wtr.peer);
        w.bytes(st->payload.data(), st->payload.size());
        send_to(wtr.peer, net::MsgType::kCellValue, w.take());
        if (!wtr.copy) {
          st->full = false;
          st->payload.clear();
        }
      } else {
        if (st->producers.empty()) return;
        auto [producer, bytes] = std::move(st->producers.front());
        st->producers.pop_front();
        st->full = true;
        st->payload = std::move(bytes);
        net::Writer w;
        write_updates(&w, producer);
        send_to(producer, net::MsgType::kCellProduceAck, w.take());
      }
    }
  }

  void on_cell_produce(int peer, net::Reader* r) {
    std::string key;
    std::vector<unsigned char> value;
    if (!r->str(&key) || !r->bytes(&value)) return;
    CellState& st = cells_[key];
    st.producers.push_back({peer, std::move(value)});
    settle_cell(&st);
  }

  void on_cell_consume(int peer, net::Reader* r) {
    std::string key;
    std::uint8_t copy = 0;
    if (!r->str(&key) || !r->u8(&copy)) return;
    CellState& st = cells_[key];
    st.consumers.push_back({peer, copy != 0});
    settle_cell(&st);
  }

  void on_cell_try_produce(int peer, net::Reader* r) {
    std::string key;
    std::vector<unsigned char> value;
    if (!r->str(&key) || !r->bytes(&value)) return;
    CellState& st = cells_[key];
    net::Writer w;
    if (!st.full && st.producers.empty()) {
      st.full = true;
      st.payload = std::move(value);
      w.u8(1);
      write_updates(&w, peer);
      send_to(peer, net::MsgType::kCellTryReply, w.take());
      settle_cell(&st);
    } else {
      w.u8(0);
      send_to(peer, net::MsgType::kCellTryReply, w.take());
    }
  }

  void on_cell_try_consume(int peer, net::Reader* r) {
    std::string key;
    if (!r->str(&key)) return;
    CellState& st = cells_[key];
    net::Writer w;
    if (st.full) {
      w.u8(1);
      write_updates(&w, peer);
      w.bytes(st.payload.data(), st.payload.size());
      st.full = false;
      st.payload.clear();
      send_to(peer, net::MsgType::kCellTryReply, w.take());
      settle_cell(&st);
    } else {
      w.u8(0);
      send_to(peer, net::MsgType::kCellTryReply, w.take());
    }
  }

  void on_cell_void(int peer, net::Reader* r) {
    std::string key;
    if (!r->str(&key)) return;
    CellState& st = cells_[key];
    st.full = false;
    st.payload.clear();
    send_to(peer, net::MsgType::kCellVoidAck, {});
    settle_cell(&st);
  }

  SharedArena* arena_;
  std::vector<PeerIO> peers_;
  std::vector<dsm::Record> log_;
  std::map<std::string, LockState> locks_;
  std::map<std::string, BarrierState> barriers_;
  std::map<std::string, DispatchState> dispatches_;
  std::map<std::string, AskforState> askfors_;
  std::map<std::string, CellState> cells_;
  bool poisoned_ = false;
  Death death_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Team entry.
// ---------------------------------------------------------------------------

SpawnStats run_cluster_team(int nproc, PrivateSpace* space,
                            const std::function<void(int)>& entry) {
  SpawnStats stats;
  stats.processes = nproc;
  const RuntimeConfig cfg = runtime_config();

  const std::int64_t t0 = util::now_ns();
  if (space != nullptr) {
    space->materialize(nproc, init_mode_for(ProcessModelKind::kCluster));
    stats.bytes_copied = space->bytes_copied();
  }

  // All connections exist before the first fork so each child only has to
  // keep its own end and close the rest.
  std::vector<net::Conn> coord_ends(static_cast<std::size_t>(nproc));
  std::vector<net::Conn> peer_ends(static_cast<std::size_t>(nproc));
  for (int i = 0; i < nproc; ++i) {
    auto [c, p] = net::connected_pair(cfg.transport);
    coord_ends[static_cast<std::size_t>(i)] = std::move(c);
    peer_ends[static_cast<std::size_t>(i)] = std::move(p);
  }

  std::fflush(nullptr);

  std::vector<pid_t> pids(static_cast<std::size_t>(nproc), -1);
  for (int proc = 0; proc < nproc; ++proc) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Member process. Keep only this peer's socket; _Exit discipline is
      // identical to the os-fork backend (no parent atexit handlers, child
      // stdio flushed explicitly).
      for (int k = 0; k < nproc; ++k) {
        coord_ends[static_cast<std::size_t>(k)].close();
        if (k != proc) peer_ends[static_cast<std::size_t>(k)].close();
      }
      try {
        ClusterClient member(std::move(peer_ends[static_cast<std::size_t>(proc)]),
                             proc, cfg.arena);
        g_client = &member;
        try {
          entry(proc);
          member.join();
          std::fflush(nullptr);
          std::_Exit(0);
        } catch (const shm::TeamPoisoned&) {
          std::fflush(nullptr);
          std::_Exit(kPoisonCollateralExit);
        } catch (const std::exception& e) {
          member.report_error(e.what());
          std::fflush(nullptr);
          std::_Exit(1);
        } catch (...) {
          member.report_error("unknown exception");
          std::fflush(nullptr);
          std::_Exit(1);
        }
      } catch (const shm::TeamPoisoned&) {
        std::fflush(nullptr);
        std::_Exit(kPoisonCollateralExit);
      } catch (...) {
        std::fflush(nullptr);
        std::_Exit(1);
      }
    }
    if (pid < 0) {
      for (int k = 0; k < proc; ++k) {
        const pid_t spawned = pids[static_cast<std::size_t>(k)];
        if (spawned > 0) {
          ::kill(spawned, SIGKILL);
          int status = 0;
          ::waitpid(spawned, &status, 0);
        }
      }
      FORCE_CHECK(false, "fork() failed spawning force process " +
                             std::to_string(proc + 1) + " of " +
                             std::to_string(nproc));
    }
    pids[static_cast<std::size_t>(proc)] = pid;
  }
  for (int k = 0; k < nproc; ++k) {
    peer_ends[static_cast<std::size_t>(k)].close();
  }
  stats.create_ns = util::now_ns() - t0;

  const std::int64_t t1 = util::now_ns();
  Coordinator coord(cfg.arena, std::move(coord_ends), pids);
  Coordinator::Death death;
  const bool died = coord.serve(&death);
  stats.join_ns = util::now_ns() - t1;

  if (died) {
    const int exit_code =
        WIFEXITED(death.status) ? WEXITSTATUS(death.status) : -1;
    const int term_signal =
        WIFSIGNALED(death.status) ? WTERMSIG(death.status) : 0;
    std::ostringstream msg;
    msg << "force process " << (death.proc0 + 1) << " of " << nproc
        << " (pid " << death.pid << ")";
    if (term_signal != 0) {
      msg << " killed by signal " << term_signal;
    } else {
      msg << " exited with code " << exit_code;
    }
    msg << " at construct site '" << death.site << "'";
    if (!death.error.empty()) msg << ": " << death.error;
    msg << " (surviving processes released by team poison)";
    throw ProcessDeathError(msg.str(), death.proc0 + 1,
                            static_cast<long>(death.pid), exit_code,
                            term_signal, death.site, death.error);
  }
  return stats;
}

#else  // !(__unix__ || __APPLE__)

SpawnStats run_cluster_team(int, PrivateSpace*,
                            const std::function<void(int)>&) {
  FORCE_CHECK(false,
              "the cluster process model needs a POSIX host (fork + "
              "socketpair); use a thread-emulated machine model here");
  return {};
}

#endif

}  // namespace force::machdep::cluster
