// Member continuations for the N:M team pool (ROADMAP: "N:M lightweight
// tasking").
//
// A pooled team may run a force of NP members on W < NP worker threads. A
// member then cannot be an OS thread: when it blocks in a barrier it must
// get off the worker so the members it is waiting FOR can run on the same
// worker. MemberScheduler multiplexes members as stackful run-to-barrier
// continuations (ucontext fibers): a member runs until it would wait, calls
// member_yield(), and the scheduler resumes a sibling. The Force's blocking
// primitives (locks, barrier flag waits, askfor polls, full/empty cells)
// route their "be polite" step through member_yield(), which is
// std::this_thread::yield() on a plain thread and a continuation switch
// inside a fiber - so the same construct code serves 1:1 and N:M teams.
//
// The scheduler is deliberately cooperative and deterministic: members are
// resumed round-robin in rank order, and a full unproductive round (every
// live member yielded without finishing) costs one OS yield. There is no
// preemption - a member that spins without ever reaching a Force primitive
// would starve its siblings, but Force programs synchronize through Force
// constructs, which all yield.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace force::machdep {

/// True when the calling thread is currently executing inside a
/// multiplexed member continuation (i.e. an N:M pooled team).
[[nodiscard]] bool on_fiber();

/// The universal polite-wait step: yields to the member scheduler when the
/// caller is a fiber, to the OS scheduler otherwise.
void member_yield();

/// Runs a batch of member bodies to completion on the calling thread,
/// multiplexing them as ucontext continuations. Exceptions thrown by a
/// body are caught into the member's slot; run() rethrows the first one
/// (in rank order) after every member has finished - mirroring
/// ProcessTeam::run's join-then-rethrow contract.
class MemberScheduler {
 public:
  explicit MemberScheduler(std::size_t stack_bytes = 256u << 10);
  ~MemberScheduler();

  MemberScheduler(const MemberScheduler&) = delete;
  MemberScheduler& operator=(const MemberScheduler&) = delete;

  /// Runs all bodies to completion; see class comment for semantics.
  void run(std::vector<std::function<void()>> bodies);

 private:
  std::size_t stack_bytes_;
  // Stacks are recycled across run() calls. A pooled N:M worker enters the
  // scheduler once per force; re-allocating (and first-touch faulting) its
  // members' stacks every entry dominated pooled re-entry cost, so a
  // long-lived scheduler hands the same warm pages to the next force.
  std::vector<std::unique_ptr<std::byte[]>> free_stacks_;
};

}  // namespace force::machdep
