// Machine models: the pluggable machine-dependent layer.
//
// A MachineModel bundles everything §4.1 of the paper calls machine
// dependent - lock mechanism, sharing strategy, process-creation model,
// hardware full/empty support, lock scarcity - behind the generic
// interfaces the machine-independent runtime is written against. Porting
// the Force to a new machine is exactly "write one MachineSpec".
//
// Six specs reproduce the machines that hosted the Force in 1989 (HEP,
// Flex/32, Encore Multimax, Sequent Balance, Alliant FX/8, Cray-2) and a
// seventh, `native`, is the modern default.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "machdep/arena.hpp"
#include "machdep/costmodel.hpp"
#include "machdep/locks.hpp"
#include "machdep/process.hpp"

namespace force::machdep {

/// Everything needed to port the Force to one machine.
struct MachineSpec {
  std::string name;
  std::string description;
  LockKind lock_kind = LockKind::kTicket;
  SharingStrategy sharing = SharingStrategy::kCompileTime;
  ProcessModelKind process_model = ProcessModelKind::kHepCreate;
  bool hardware_full_empty = false;  ///< HEP only: 1-cell async variables
  /// True when the machine exposes atomic read-modify-write instructions
  /// (fetch&add / compare&swap) to user code. Dispatch-heavy constructs
  /// (selfscheduled DOALL claims, Askfor work stealing) then bypass the
  /// generic lock layer entirely; without it they fall back to the
  /// paper's lock-protected expansion (§4.1.3's efficiency concession).
  bool hardware_atomic_rmw = false;
  /// Physical locks available; < 0 means unlimited. When the budget is
  /// exhausted further logical locks are multiplexed over a shared pool
  /// ("locks may be scarce resources ... some parallel programs may not
  /// execute as efficiently", paper §4.1.3).
  int lock_budget = -1;
  std::size_t page_size = 4096;
  SpinPolicy spin_policy{};
  CostParameters costs{};
};

/// Names of all registered machines, in canonical order.
std::vector<std::string> machine_names();

/// Spec lookup by name; throws on unknown machines.
const MachineSpec& machine_spec(const std::string& name);

/// Tally of lock handouts, for the scarcity experiments.
struct LockAllocationStats {
  std::uint64_t logical_locks = 0;
  std::uint64_t physical_locks = 0;
  std::uint64_t striped_locks = 0;
};

/// A live machine instance: owns the instrumentation counters and enforces
/// the lock budget. Thread-safe: locks may be created mid-run (e.g. when a
/// process first reaches a new construct site).
class MachineModel {
 public:
  explicit MachineModel(MachineSpec spec);

  [[nodiscard]] const MachineSpec& spec() const { return spec_; }
  [[nodiscard]] const std::string& name() const { return spec_.name; }
  [[nodiscard]] LockCounters& counters() { return counters_; }
  [[nodiscard]] const LockCounters& counters() const { return counters_; }
  [[nodiscard]] CostModel cost_model() const {
    return CostModel(spec_.costs);
  }

  /// Creates a logical lock. Within budget this is a real lock of the
  /// machine's kind; past the budget it is a striped lock multiplexed over
  /// a small shared pool (still correct binary-semaphore semantics, just
  /// slower - the paper's scarcity effect).
  std::unique_ptr<BasicLock> new_lock();

  /// Creates a dispatch counter on the machine's best engine: lock-free
  /// when the spec declares hardware_atomic_rmw (and `force_locked` is
  /// not set), otherwise lock-guarded over new_lock() - so on lock-only
  /// machines dispatch stays on the instrumented, budgeted lock layer.
  /// `force_locked` exists for benches/tests that compare both engines
  /// on one machine model.
  std::unique_ptr<DispatchCounter> new_dispatch_counter(
      bool force_locked = false);

  [[nodiscard]] LockAllocationStats lock_stats() const;

  [[nodiscard]] ProcessTeam process_team() const {
    return ProcessTeam(spec_.process_model);
  }

 private:
  MachineSpec spec_;
  LockCounters counters_;
  mutable std::mutex alloc_mutex_;
  LockAllocationStats stats_;
  std::vector<std::shared_ptr<BasicLock>> stripe_pool_;
  std::size_t next_stripe_ = 0;
};

}  // namespace force::machdep
