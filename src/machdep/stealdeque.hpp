// Bounded Chase-Lev work-stealing deque (machine-dependent layer).
//
// This is the second lock-free structure gated on
// MachineSpec::hardware_atomic_rmw (the first is DispatchCounter): a
// single-owner double-ended queue where the owner pushes and pops at the
// bottom (LIFO, cache-warm) and any number of thieves steal from the top
// (FIFO, oldest task first). The Askfor monitor uses one per worker as its
// dispatch fast path; the monitor's generic lock remains the slow path for
// seeding, overflow, blocking and termination, so lock-only machines never
// reach this file.
//
// The memory ordering follows Le, Pop, Cohen & Zappa Nardelli, "Correct
// and Efficient Work-Stealing for Weak Memory Models" (PPoPP 2013). The
// deque is deliberately *bounded*: a full push returns false and the
// caller routes the token to the monitor's central queue instead - no
// allocation, no buffer growth race, and a natural backpressure valve.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace force::machdep {

class StealDeque {
 public:
  /// Capacity must be a power of two (index masking).
  static constexpr std::size_t kCapacity = 1024;

  StealDeque() {
    for (auto& slot : buffer_) {
      slot.store(0, std::memory_order_relaxed);
    }
  }

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  /// Owner only. False when full (caller falls back to the central queue).
  bool push(std::size_t value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(kCapacity)) return false;
    buffer_[index(b)].store(value, std::memory_order_relaxed);
    // The value store must be visible before the new bottom is.
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
    return true;
  }

  /// Owner only: LIFO pop. False when empty.
  bool pop(std::size_t* value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    // The bottom decrement must be ordered before the top read, or an
    // owner and a thief could both take the last element.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t <= b) {
      *value = buffer_[index(b)].load(std::memory_order_relaxed);
      if (t == b) {
        // Last element: race the thieves for it via top.
        const bool won = top_.compare_exchange_strong(
            t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
        bottom_.store(b + 1, std::memory_order_relaxed);
        return won;
      }
      return true;
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
    return false;
  }

  /// Any thread: FIFO steal. False when empty or when the CAS lost a race
  /// (callers treat both as "try elsewhere").
  bool steal(std::size_t* value) {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return false;
    const std::size_t v = buffer_[index(t)].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;
    }
    *value = v;
    return true;
  }

  /// Racy size hint (diagnostics and fast empty checks only).
  [[nodiscard]] std::int64_t size_hint() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

 private:
  static std::size_t index(std::int64_t i) {
    return static_cast<std::size_t>(i) & (kCapacity - 1);
  }

  // top and bottom on their own cache lines: thieves hammer top, the
  // owner hammers bottom.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<std::size_t> buffer_[kCapacity];
};

}  // namespace force::machdep
