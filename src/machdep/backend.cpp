// ExecutionBackend implementations: the one place that knows how each
// process substrate realizes the Force's constructs. ThreadBackend keeps the
// thread axis monomorphic by returning null engines; ShmBackend and
// ClusterBackend port the construct protocols (arena keys, site labels,
// champion sections) byte-for-byte from the former in-construct branches.
#include "machdep/backend.hpp"

#include <cstring>
#include <new>

#include "machdep/arena.hpp"
#include "machdep/cluster.hpp"
#include "machdep/machine.hpp"
#include "machdep/shm.hpp"
#include "machdep/teampool.hpp"
#include "util/check.hpp"

namespace force::machdep {

namespace {

std::size_t align_up(std::size_t offset, std::size_t align) {
  return (offset + align - 1) & ~(align - 1);
}

}  // namespace

// ---------------------------------------------------------------------------
// Process model names and parsing.
// ---------------------------------------------------------------------------

const char* process_model_name(ProcessModel model) {
  switch (model) {
    case ProcessModel::kThread:
      return "thread";
    case ProcessModel::kOsFork:
      return "os-fork";
    case ProcessModel::kCluster:
      return "cluster";
  }
  return "?";
}

const std::vector<ProcessModel>& all_process_models() {
  static const std::vector<ProcessModel> kModels = {
      ProcessModel::kThread, ProcessModel::kOsFork, ProcessModel::kCluster};
  return kModels;
}

bool parse_process_model(const std::string& text, ProcessModel* out) {
  if (text == "machine" || text == "thread") {
    *out = ProcessModel::kThread;
    return true;
  }
  if (text == "os-fork") {
    *out = ProcessModel::kOsFork;
    return true;
  }
  if (text == "cluster") {
    *out = ProcessModel::kCluster;
    return true;
  }
  return false;
}

const char* process_model_valid_set() {
  return "'machine' (alias 'thread'), 'os-fork' or 'cluster'";
}

// ---------------------------------------------------------------------------
// The capability table: the single source of truth for backend narrowing.
// ---------------------------------------------------------------------------

const std::vector<CapabilityRow>& capability_table() {
  // Columns: cap, id, construct, thread, os-fork, cluster, reason.
  static const std::vector<CapabilityRow> kTable = {
      {Capability::kPcase, "pcase", "Pcase", true, false, false,
       "the section-negotiation claim registry is per-address-space, so "
       "separate processes would each claim every section"},
      {Capability::kResolve, "resolve", "Resolve", true, false, false,
       "its component barriers and claim state are per-address-space"},
      {Capability::kSentry, "sentry", "the runtime sentry", true, false,
       false,
       "the sentry cannot observe a separate-address-space team (its state "
       "is per-process); validate on a thread-emulated process model"},
      {Capability::kTrace, "trace", "event tracing", true, false, false,
       "tracing is per-address-space; the os-fork and cluster backends "
       "cannot collect child events"},
      {Capability::kTeamPool, "team-pool", "persistent team pools", true,
       true, false,
       "each cluster run forks a fresh socket-connected team"},
      {Capability::kNmScheduling, "nm-scheduling", "N:M member scheduling",
       true, false, false,
       "the os-fork pool keeps one resident child per member and the "
       "cluster backend forks one peer per member"},
      {Capability::kNonTrivialPayloads, "non-trivial-payloads",
       "non-trivially-copyable payloads", true, false, false,
       "payloads that are not trivially copyable cannot cross address "
       "spaces or the wire by memcpy"},
      {Capability::kIsfull, "isfull", "Isfull", true, true, false,
       "the full/empty state lives in the coordinator, so any snapshot "
       "would be stale by the time it arrived"},
      {Capability::kThreadBarrierAlgorithms, "thread-barriers",
       "thread barrier algorithms", true, false, false,
       "thread barrier algorithms cannot span separate address spaces; use "
       "make_process_shared_barrier with a keyed barrier"},
  };
  return kTable;
}

const CapabilityRow& capability_row(Capability cap) {
  for (const CapabilityRow& row : capability_table()) {
    if (row.cap == cap) return row;
  }
  FORCE_CHECK(false, "capability missing from capability_table()");
}

bool backend_supports(ProcessModel model, Capability cap) {
  const CapabilityRow& row = capability_row(cap);
  switch (model) {
    case ProcessModel::kThread:
      return row.thread;
    case ProcessModel::kOsFork:
      return row.os_fork;
    case ProcessModel::kCluster:
      return row.cluster;
  }
  return false;
}

std::string capability_reject_message(ProcessModel model, Capability cap,
                                      const std::string& construct,
                                      const std::string& site) {
  const CapabilityRow& row = capability_row(cap);
  std::string msg = construct;
  if (!site.empty()) {
    msg += " at '";
    msg += site;
    msg += "'";
  }
  msg += " is not supported under the ";
  msg += process_model_name(model);
  msg += " backend [capability ";
  msg += row.id;
  msg += "]: ";
  msg += row.reason;
  return msg;
}

std::string capability_matrix_markdown() {
  std::string out =
      "| capability | construct | thread | os-fork | cluster |\n"
      "|---|---|---|---|---|\n";
  const auto cell = [](bool yes) { return yes ? "yes" : "no"; };
  for (const CapabilityRow& row : capability_table()) {
    out += "| `";
    out += row.id;
    out += "` | ";
    out += row.construct;
    out += " | ";
    out += cell(row.thread);
    out += " | ";
    out += cell(row.os_fork);
    out += " | ";
    out += cell(row.cluster);
    out += " |\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// ExecutionBackend base defaults.
// ---------------------------------------------------------------------------

std::unique_ptr<DoallSite> ExecutionBackend::make_doall_site(
    const std::string& /*site*/, int /*width*/) {
  return nullptr;
}

std::unique_ptr<AskforRing> ExecutionBackend::make_askfor_ring(
    const std::string& /*key*/, std::uint32_t /*capacity*/,
    std::size_t /*task_bytes*/) {
  return nullptr;
}

std::unique_ptr<AsyncCell> ExecutionBackend::make_async_cell(
    const std::string& /*label*/, std::size_t /*payload_bytes*/,
    std::size_t /*payload_align*/) {
  return nullptr;
}

std::unique_ptr<ReductionSite> ExecutionBackend::make_reduction_site(
    const std::string& /*key*/, int /*width*/, std::size_t /*payload_bytes*/,
    std::size_t /*payload_align*/) {
  return nullptr;
}

std::unique_ptr<BarrierEngine> ExecutionBackend::make_team_barrier(
    int /*width*/, const std::string& /*key*/) {
  return nullptr;
}

std::atomic<std::uint32_t>* ExecutionBackend::shared_run_generation_word() {
  return nullptr;
}

TeamPool& ExecutionBackend::team_pool() {
  FORCE_CHECK(false, "the thread team pool cannot drive os-fork processes");
}

ForkTeamPool& ExecutionBackend::fork_pool(int /*nproc*/) {
  FORCE_CHECK(false, "the fork team pool needs process_model = \"os-fork\"");
}

void ExecutionBackend::reset_shared_sync_after_death() {
  FORCE_CHECK(false, "sync-state death recovery is an os-fork concern");
}

// ---------------------------------------------------------------------------
// os-fork engines (machdep/shm over the MAP_SHARED arena).
// ---------------------------------------------------------------------------

namespace {

class ShmBarrierEngine final : public BarrierEngine {
 public:
  ShmBarrierEngine(SharedArena* arena, int width, const std::string& key)
      : state_(&arena->get_or_create<shm::ShmBarrierState>(key)),
        label_("barrier '" + key + "'"),
        width_(static_cast<std::uint32_t>(width)) {}

  void arrive(int /*proc0*/, const std::function<void()>* section) override {
    static const std::function<void()> kNoSection;
    shm::shm_barrier_arrive(*state_, width_, section != nullptr ? *section
                                                                : kNoSection,
                            label_.c_str());
  }

  [[nodiscard]] const char* name() const override { return "process-shared"; }

 private:
  shm::ShmBarrierState* state_;
  std::string label_;
  std::uint32_t width_;
};

class ShmDoallSite final : public DoallSite {
 public:
  ShmDoallSite(SharedArena* arena, const std::string& site, int width)
      : state_(&arena->get_or_create<shm::ShmSelfschedState>("%ssdo/" + site)),
        label_("selfsched '" + site + "'"),
        width_(static_cast<std::uint32_t>(width)) {}

  DoallBounds enter(std::int64_t start, std::int64_t last, std::int64_t incr,
                    std::int64_t trips) override {
    // The entry champion publishes the bounds and re-arms the shared
    // dispatch counter inside the barrier section; the episode release
    // publishes them to every process.
    shm::shm_barrier_arrive(
        state_->entry, width_,
        [this, start, last, incr, trips] {
          state_->start = start;
          state_->last = last;
          state_->incr = incr;
          state_->trips = trips;
          state_->dispatch.value.store(0, std::memory_order_relaxed);
        },
        label_.c_str());
    DoallBounds b;
    b.start = state_->start;
    b.last = state_->last;
    b.incr = state_->incr;
    b.trips = state_->trips;
    return b;
  }

  DispatchClaim claim(std::int64_t want, std::int64_t limit) override {
    return shm::shm_dispatch_claim(state_->dispatch, want, limit);
  }

  DispatchClaim claim_fraction(std::int64_t limit,
                               std::int64_t divisor) override {
    return shm::shm_dispatch_claim_fraction(state_->dispatch, limit, divisor);
  }

 private:
  shm::ShmSelfschedState* state_;
  std::string label_;
  std::uint32_t width_;
};

class ShmAskforRing final : public AskforRing {
 public:
  ShmAskforRing(SharedArena* arena, const std::string& key,
                std::uint32_t capacity, std::size_t task_bytes)
      : label_("askfor '" + key + "'") {
    const auto stride = static_cast<std::uint32_t>(task_bytes);
    void* blob = arena->allocate_once(
        "%askfor/" + key, shm::shm_askfor_bytes(capacity, stride),
        alignof(shm::ShmAskforState), VarClass::kShared,
        [capacity, stride](void* p) {
          shm::shm_askfor_init(p, capacity, stride);
        });
    state_ = static_cast<shm::ShmAskforState*>(blob);
  }

  void put(const void* task) override { shm::shm_askfor_put(*state_, task); }

  bool ask(void* out) override {
    return shm::shm_askfor_ask(*state_, out, label_.c_str());
  }

  void complete() override { shm::shm_askfor_complete(*state_); }
  void probend() override { shm::shm_askfor_probend(*state_); }

  [[nodiscard]] bool ended() override {
    return shm::shm_askfor_ended(*state_);
  }

  [[nodiscard]] std::uint64_t granted() override {
    return state_->granted.load(std::memory_order_relaxed);
  }

  void rearm(std::uint32_t gen) override {
    shm::shm_askfor_rearm(*state_, gen);
  }

 private:
  shm::ShmAskforState* state_;
  std::string label_;
};

class ShmAsyncCell final : public AsyncCell {
 public:
  ShmAsyncCell(SharedArena* arena, const std::string& label,
               std::size_t payload_bytes)
      : label_(label), bytes_(payload_bytes) {
    // One blob: the state word first (its 64-byte alignment covers any
    // payload the capability gate admits), the payload window right after.
    void* blob = arena->allocate_once(
        "%async/" + label, sizeof(shm::ShmCellState) + payload_bytes,
        alignof(shm::ShmCellState), VarClass::kShared,
        [](void* p) { new (p) shm::ShmCellState(); });
    state_ = static_cast<shm::ShmCellState*>(blob);
    payload_ = static_cast<unsigned char*>(blob) + sizeof(shm::ShmCellState);
  }

  void produce(const void* value) override {
    shm::shm_cell_produce(*state_, payload_, value, bytes_, label_.c_str());
  }
  void consume(void* out) override {
    shm::shm_cell_consume(*state_, payload_, out, bytes_, label_.c_str());
  }
  void copy(void* out) override {
    shm::shm_cell_copy(*state_, payload_, out, bytes_, label_.c_str());
  }
  bool try_produce(const void* value) override {
    return shm::shm_cell_try_produce(*state_, payload_, value, bytes_);
  }
  bool try_consume(void* out) override {
    return shm::shm_cell_try_consume(*state_, payload_, out, bytes_);
  }
  void void_state() override { shm::shm_cell_void(*state_); }
  [[nodiscard]] bool is_full() override {
    return shm::shm_cell_is_full(*state_);
  }

 private:
  shm::ShmCellState* state_;
  unsigned char* payload_;
  std::string label_;
  std::size_t bytes_;
};

class ShmReductionSite final : public ReductionSite {
 public:
  ShmReductionSite(SharedArena* arena, const std::string& key, int width,
                   std::size_t payload_bytes, std::size_t payload_align)
      : label_("reduce '" + key + "'"),
        width_(static_cast<std::uint32_t>(width)),
        bytes_(payload_bytes) {
    // Blob layout mirrors the former struct { ShmReduceHeader; T acc;
    // T result; }: header first so death recovery can scrub the protocol
    // words by prefix without knowing T.
    const std::size_t acc_off =
        align_up(sizeof(shm::ShmReduceHeader), payload_align);
    const std::size_t result_off =
        align_up(acc_off + payload_bytes, payload_align);
    const std::size_t align =
        payload_align > alignof(shm::ShmReduceHeader)
            ? payload_align
            : alignof(shm::ShmReduceHeader);
    void* blob = arena->allocate_once(
        "%reduce/" + key, result_off + payload_bytes, align,
        VarClass::kShared, [result_off, payload_bytes](void* p) {
          new (p) shm::ShmReduceHeader();
          std::memset(static_cast<unsigned char*>(p) +
                          sizeof(shm::ShmReduceHeader),
                      0,
                      result_off + payload_bytes -
                          sizeof(shm::ShmReduceHeader));
        });
    hdr_ = static_cast<shm::ShmReduceHeader*>(blob);
    acc_ = static_cast<unsigned char*>(blob) + acc_off;
    result_ = static_cast<unsigned char*>(blob) + result_off;
  }

  void allreduce(int /*me0*/, const void* local, void* result_out,
                 void* shared_target, const Combine& combine) override {
    shm::note_site(label_.c_str());
    shm::shm_lock_acquire(hdr_->lock);
    if (hdr_->arrived == 0) {
      std::memcpy(acc_, local, bytes_);
    } else {
      combine(acc_, local);
    }
    ++hdr_->arrived;
    shm::shm_lock_release(hdr_->lock);
    shm::shm_barrier_arrive(
        hdr_->barrier, width_,
        [this, shared_target] {
          std::memcpy(result_, acc_, bytes_);
          hdr_->arrived = 0;
          if (shared_target != nullptr) {
            std::memcpy(shared_target, result_, bytes_);
          }
        },
        label_.c_str());
    std::memcpy(result_out, result_, bytes_);
  }

 private:
  shm::ShmReduceHeader* hdr_;
  unsigned char* acc_;
  unsigned char* result_;
  std::string label_;
  std::uint32_t width_;
  std::size_t bytes_;
};

// ---------------------------------------------------------------------------
// Cluster engines (coordinator RPCs via the member's ClusterClient).
// ---------------------------------------------------------------------------

class ClusterBarrierEngine final : public BarrierEngine {
 public:
  ClusterBarrierEngine(int width, std::string key)
      : width_(width),
        key_(std::move(key)),
        label_("barrier '" + key_ + "'") {}

  void arrive(int /*proc0*/, const std::function<void()>* section) override {
    cluster::ClusterClient& c = cluster::require_client();
    c.note_site(label_);
    c.barrier_arrive(key_, width_, section);
  }

  [[nodiscard]] const char* name() const override { return "cluster"; }

 private:
  int width_;
  std::string key_;
  std::string label_;
};

class ClusterDoallSite final : public DoallSite {
 public:
  /// Episode bounds in the DSM-coherent arena: written by the entry
  /// champion inside the barrier section (a release point), read by every
  /// member after the episode release (an acquire point).
  struct Bounds {
    std::int64_t start = 0;
    std::int64_t last = 0;
    std::int64_t incr = 1;
    std::int64_t trips = 0;
  };

  ClusterDoallSite(SharedArena* arena, const std::string& site, int width)
      : key_("%ssdo/" + site),
        label_("selfsched '" + site + "'"),
        entry_(width, key_ + "/entry"),
        bounds_(&arena->get_or_create<Bounds>(key_)) {}

  DoallBounds enter(std::int64_t start, std::int64_t last, std::int64_t incr,
                    std::int64_t trips) override {
    const std::function<void()> section = [this, start, last, incr, trips] {
      bounds_->start = start;
      bounds_->last = last;
      bounds_->incr = incr;
      bounds_->trips = trips;
      cluster::require_client().dispatch_reset(key_);
    };
    entry_.arrive(0, &section);
    cluster::require_client().note_site(label_);
    DoallBounds b;
    b.start = bounds_->start;
    b.last = bounds_->last;
    b.incr = bounds_->incr;
    b.trips = bounds_->trips;
    return b;
  }

  DispatchClaim claim(std::int64_t want, std::int64_t limit) override {
    const cluster::Claim c =
        cluster::require_client().dispatch_claim(key_, want, limit);
    return DispatchClaim{c.begin, c.count};
  }

  DispatchClaim claim_fraction(std::int64_t limit,
                               std::int64_t divisor) override {
    const cluster::Claim c =
        cluster::require_client().dispatch_claim_fraction(key_, limit,
                                                          divisor);
    return DispatchClaim{c.begin, c.count};
  }

 private:
  std::string key_;
  std::string label_;
  ClusterBarrierEngine entry_;
  Bounds* bounds_;
};

class ClusterAskforRing final : public AskforRing {
 public:
  ClusterAskforRing(std::string key, std::size_t task_bytes)
      : key_(std::move(key)),
        label_("askfor '" + key_ + "'"),
        bytes_(task_bytes) {}

  void put(const void* task) override {
    cluster::ClusterClient& c = cluster::require_client();
    c.note_site(label_);
    c.askfor_put(key_, task, bytes_);
  }

  bool ask(void* out) override {
    cluster::ClusterClient& c = cluster::require_client();
    c.note_site(label_);
    return c.askfor_ask(key_, out, bytes_);
  }

  void complete() override {
    cluster::require_client().askfor_complete(key_);
  }

  void probend() override {
    cluster::require_client().askfor_probend(key_);
  }

  [[nodiscard]] bool ended() override {
    bool ended = false;
    std::uint64_t granted = 0;
    cluster::require_client().askfor_status(key_, &ended, &granted);
    return ended;
  }

  [[nodiscard]] std::uint64_t granted() override {
    bool ended = false;
    std::uint64_t granted = 0;
    cluster::require_client().askfor_status(key_, &ended, &granted);
    return granted;
  }

  void rearm(std::uint32_t /*gen*/) override {
    // The coordinator's monitor table is born fresh with each cluster team
    // (no pooled re-entry), so generations never need re-arming.
  }

 private:
  std::string key_;
  std::string label_;
  std::size_t bytes_;
};

class ClusterAsyncCell final : public AsyncCell {
 public:
  ClusterAsyncCell(std::string label, std::size_t payload_bytes)
      : label_(std::move(label)), bytes_(payload_bytes) {}

  void produce(const void* value) override {
    cluster::ClusterClient& c = cluster::require_client();
    c.note_site(label_);
    c.cell_produce(label_, value, bytes_);
  }
  void consume(void* out) override {
    cluster::ClusterClient& c = cluster::require_client();
    c.note_site(label_);
    c.cell_consume(label_, out, bytes_);
  }
  void copy(void* out) override {
    cluster::ClusterClient& c = cluster::require_client();
    c.note_site(label_);
    c.cell_copy(label_, out, bytes_);
  }
  bool try_produce(const void* value) override {
    return cluster::require_client().cell_try_produce(label_, value, bytes_);
  }
  bool try_consume(void* out) override {
    return cluster::require_client().cell_try_consume(label_, out, bytes_);
  }
  void void_state() override { cluster::require_client().cell_void(label_); }

  [[nodiscard]] bool is_full() override {
    FORCE_CHECK(false,
                capability_reject_message(ProcessModel::kCluster,
                                          Capability::kIsfull, "Isfull",
                                          label_));
  }

 private:
  std::string label_;
  std::size_t bytes_;
};

class ClusterReductionSite final : public ReductionSite {
 public:
  ClusterReductionSite(SharedArena* arena, const std::string& key, int width,
                       std::size_t payload_bytes, std::size_t payload_align)
      : lock_("reduce@" + key),
        barrier_(width, "%reduce/" + key + "/barrier"),
        bytes_(payload_bytes) {
    // State travels through the DSM-coherent arena: the lock orders the
    // accumulation (each release ships the dirty bytes), the barrier's
    // episode release publishes the champion's snapshot.
    const std::size_t acc_off = align_up(sizeof(std::int32_t), payload_align);
    const std::size_t result_off =
        align_up(acc_off + payload_bytes, payload_align);
    const std::size_t align = payload_align > alignof(std::int32_t)
                                  ? payload_align
                                  : alignof(std::int32_t);
    void* blob = arena->allocate_once(
        "%reduce/" + key, result_off + payload_bytes, align,
        VarClass::kShared, [result_off, payload_bytes](void* p) {
          std::memset(p, 0, result_off + payload_bytes);
        });
    arrived_ = static_cast<std::int32_t*>(blob);
    acc_ = static_cast<unsigned char*>(blob) + acc_off;
    result_ = static_cast<unsigned char*>(blob) + result_off;
  }

  void allreduce(int me0, const void* local, void* result_out,
                 void* shared_target, const Combine& combine) override {
    lock_.acquire();
    if (*arrived_ == 0) {
      std::memcpy(acc_, local, bytes_);
    } else {
      combine(acc_, local);
    }
    ++*arrived_;
    lock_.release();
    const std::function<void()> section = [this, shared_target] {
      std::memcpy(result_, acc_, bytes_);
      *arrived_ = 0;
      if (shared_target != nullptr) {
        std::memcpy(shared_target, result_, bytes_);
      }
    };
    barrier_.arrive(me0, &section);
    std::memcpy(result_out, result_, bytes_);
  }

 private:
  cluster::ClusterLock lock_;
  ClusterBarrierEngine barrier_;
  std::int32_t* arrived_;
  unsigned char* acc_;
  unsigned char* result_;
  std::size_t bytes_;
};

// ---------------------------------------------------------------------------
// ThreadBackend: machine-model engines; null construct engines keep the
// constructs' monomorphic thread machinery (lock-free dispatch included).
// ---------------------------------------------------------------------------

class ThreadBackend final : public ExecutionBackend {
 public:
  explicit ThreadBackend(const BackendInit& init)
      : machine_(init.machine),
        team_pool_enabled_(init.team_pool),
        pool_workers_(init.pool_workers),
        member_stack_bytes_(init.member_stack_bytes) {}

  [[nodiscard]] ProcessModel model() const override {
    return ProcessModel::kThread;
  }

  [[nodiscard]] std::unique_ptr<BasicLock> new_lock(
      LockRole role, const std::string& label,
      LockObserver* observer) override {
    std::unique_ptr<BasicLock> inner = machine_->new_lock();
    if (observer == nullptr) return inner;
    return std::make_unique<ObservedLock>(std::move(inner), observer, role,
                                          label);
  }

  [[nodiscard]] ProcessTeam process_team() const override {
    return machine_->process_team();
  }

  SpawnStats run_team(int nproc, PrivateSpace* space,
                      const std::function<void(int)>& member,
                      const std::type_info* /*program_type*/) override {
    if (!team_pool_enabled_) {
      return machine_->process_team().run(nproc, space, member);
    }
    if (space != nullptr) {
      // Same fork-time copy semantics as the one-shot team; the pool only
      // changes who executes the members, not what they inherit.
      space->materialize(nproc,
                         init_mode_for(machine_->process_team().kind()));
    }
    SpawnStats stats = team_pool().run(nproc, member);
    if (space != nullptr) stats.bytes_copied = space->bytes_copied();
    return stats;
  }

  [[nodiscard]] TeamPool& team_pool() override {
    if (team_pool_ == nullptr) {
      team_pool_ =
          std::make_unique<TeamPool>(pool_workers_, member_stack_bytes_);
    }
    return *team_pool_;
  }

 private:
  MachineModel* machine_;
  bool team_pool_enabled_;
  int pool_workers_;
  std::size_t member_stack_bytes_;
  std::unique_ptr<TeamPool> team_pool_;
};

// ---------------------------------------------------------------------------
// ShmBackend: fork(2) children over the MAP_SHARED arena.
// ---------------------------------------------------------------------------

class ShmBackend final : public ExecutionBackend {
 public:
  explicit ShmBackend(const BackendInit& init)
      : arena_(init.arena), team_pool_enabled_(init.team_pool) {}

  [[nodiscard]] ProcessModel model() const override {
    return ProcessModel::kOsFork;
  }

  [[nodiscard]] std::unique_ptr<DoallSite> make_doall_site(
      const std::string& site, int width) override {
    return std::make_unique<ShmDoallSite>(arena_, site, width);
  }

  [[nodiscard]] std::unique_ptr<AskforRing> make_askfor_ring(
      const std::string& key, std::uint32_t capacity,
      std::size_t task_bytes) override {
    return std::make_unique<ShmAskforRing>(arena_, key, capacity, task_bytes);
  }

  [[nodiscard]] std::unique_ptr<AsyncCell> make_async_cell(
      const std::string& label, std::size_t payload_bytes,
      std::size_t payload_align) override {
    // The payload window follows a 64-byte-aligned state word; stricter
    // alignments would need padding nobody has asked for yet.
    FORCE_CHECK(payload_align <= alignof(shm::ShmCellState),
                "os-fork async payloads must not require more than 64-byte "
                "alignment (the payload window follows the cell state word)");
    return std::make_unique<ShmAsyncCell>(arena_, label, payload_bytes);
  }

  [[nodiscard]] std::unique_ptr<ReductionSite> make_reduction_site(
      const std::string& key, int width, std::size_t payload_bytes,
      std::size_t payload_align) override {
    return std::make_unique<ShmReductionSite>(arena_, key, width,
                                              payload_bytes, payload_align);
  }

  [[nodiscard]] std::unique_ptr<BarrierEngine> make_team_barrier(
      int width, const std::string& key) override {
    return std::make_unique<ShmBarrierEngine>(arena_, width, key);
  }

  [[nodiscard]] std::unique_ptr<BasicLock> new_lock(
      LockRole /*role*/, const std::string& label,
      LockObserver* /*observer*/) override {
    // One futex word in the MAP_SHARED arena, keyed by the construct
    // label. Labels are construct-unique (critical sections embed their
    // site key, named locks their name), so every process that reaches
    // the same construct contends on the same word. The observer is
    // ignored: the capability table forbids the sentry here.
    auto* state =
        &arena_->get_or_create<shm::ShmLockState>("%lock/" + label);
    return std::make_unique<shm::ShmLock>(state, label);
  }

  [[nodiscard]] ProcessTeam process_team() const override {
    return ProcessTeam(ProcessModelKind::kOsFork);
  }

  [[nodiscard]] std::atomic<std::uint32_t>* shared_run_generation_word()
      override {
    // Resident pooled children observe force-entry generations through
    // this arena word; their own copies of the environment freeze at fork.
    return &arena_->get_or_create<std::atomic<std::uint32_t>>(
        "%force/run_gen");
  }

  SpawnStats run_team(int nproc, PrivateSpace* space,
                      const std::function<void(int)>& member,
                      const std::type_info* program_type) override {
    if (!team_pool_enabled_) {
      return ProcessTeam(ProcessModelKind::kOsFork).run(nproc, space, member);
    }
    ForkTeamPool& pool = fork_pool(nproc);
    // The pool's resident children re-execute the closure they were
    // forked with, so every pooled run must pass the same program. The
    // closure's type is the strongest identity available on a
    // std::function; same-type closures with different captured state
    // cannot be told apart (docs/PORTING.md spells out the contract).
    if (pool.armed()) {
      FORCE_CHECK(pooled_program_type_ != nullptr &&
                      program_type != nullptr &&
                      *pooled_program_type_ == *program_type,
                  "an os-fork team pool runs one program: its resident "
                  "children re-execute the closure they were forked with; "
                  "use a fresh Force (or team_pool = false) for a "
                  "different program");
    }
    SpawnStats stats;
    try {
      stats = pool.run(space, member);
    } catch (const ProcessDeathError&) {
      // The pool is already retired; the dead team left the arena's
      // synchronization words wherever the victims stood. Scrub them now
      // so the fresh team the next run forks starts from a clean slate.
      reset_shared_sync_after_death();
      throw;
    }
    pooled_program_type_ = program_type;
    return stats;
  }

  [[nodiscard]] ForkTeamPool& fork_pool(int nproc) override {
    if (fork_pool_ != nullptr && fork_pool_->nproc() != nproc) {
      fork_pool_->shutdown();
      fork_pool_.reset();
    }
    if (fork_pool_ == nullptr) {
      fork_pool_ = std::make_unique<ForkTeamPool>(nproc);
    }
    return *fork_pool_;
  }

  void reset_shared_sync_after_death() override {
    arena_->for_each_allocation([](const std::string& name, void* addr,
                                   std::size_t) {
      const auto prefixed = [&name](const char* p) {
        return name.rfind(p, 0) == 0;
      };
      if (name == "%force/global") {
        // Arrival count of the global barrier: the victims' arrivals can
        // never complete. The episode word stays monotonic (arrivals read
        // it fresh), so zeroing the count alone re-arms the episode.
        static_cast<shm::ShmBarrierState*>(addr)->count.store(
            0, std::memory_order_release);
      } else if (prefixed("%lock/")) {
        static_cast<shm::ShmLockState*>(addr)->word.store(
            0, std::memory_order_release);
      } else if (prefixed("%ssdo/")) {
        // The dispatch counter is re-armed by the entry champion anyway;
        // only the entry barrier carries dead arrivals.
        static_cast<shm::ShmSelfschedState*>(addr)->entry.count.store(
            0, std::memory_order_release);
      } else if (prefixed("%askfor/")) {
        auto* a = static_cast<shm::ShmAskforState*>(addr);
        a->monitor.word.store(0, std::memory_order_release);
        a->head = 0;
        a->tail = 0;
        a->working = 0;
        a->ended = 0;
        // Back to "never armed": the next entry's first operation runs the
        // full generation re-arm.
        a->seen_gen.store(0, std::memory_order_release);
      } else if (prefixed("%async/")) {
        // Busy means a victim died inside the payload window and the bytes
        // are undefined: drop to empty. Full cells are user data and stay.
        auto* c = static_cast<shm::ShmCellState*>(addr);
        std::uint32_t busy = 2;
        c->state.compare_exchange_strong(busy, 0,
                                         std::memory_order_acq_rel);
      } else if (prefixed("%reduce/")) {
        auto* h = static_cast<shm::ShmReduceHeader*>(addr);
        h->lock.word.store(0, std::memory_order_release);
        h->barrier.count.store(0, std::memory_order_release);
        h->arrived = 0;
      }
    });
  }

 private:
  SharedArena* arena_;
  bool team_pool_enabled_;
  std::unique_ptr<ForkTeamPool> fork_pool_;
  const std::type_info* pooled_program_type_ = nullptr;
};

// ---------------------------------------------------------------------------
// ClusterBackend: separate processes, every construct a coordinator RPC.
// ---------------------------------------------------------------------------

class ClusterBackend final : public ExecutionBackend {
 public:
  explicit ClusterBackend(const BackendInit& init)
      : arena_(init.arena), transport_(init.cluster_transport) {}

  [[nodiscard]] ProcessModel model() const override {
    return ProcessModel::kCluster;
  }

  [[nodiscard]] std::unique_ptr<DoallSite> make_doall_site(
      const std::string& site, int width) override {
    return std::make_unique<ClusterDoallSite>(arena_, site, width);
  }

  [[nodiscard]] std::unique_ptr<AskforRing> make_askfor_ring(
      const std::string& key, std::uint32_t /*capacity*/,
      std::size_t task_bytes) override {
    // The coordinator's monitor queue grows on demand; capacity is an
    // os-fork ring concern.
    return std::make_unique<ClusterAskforRing>(key, task_bytes);
  }

  [[nodiscard]] std::unique_ptr<AsyncCell> make_async_cell(
      const std::string& label, std::size_t payload_bytes,
      std::size_t /*payload_align*/) override {
    return std::make_unique<ClusterAsyncCell>(label, payload_bytes);
  }

  [[nodiscard]] std::unique_ptr<ReductionSite> make_reduction_site(
      const std::string& key, int width, std::size_t payload_bytes,
      std::size_t payload_align) override {
    return std::make_unique<ClusterReductionSite>(arena_, key, width,
                                                  payload_bytes,
                                                  payload_align);
  }

  [[nodiscard]] std::unique_ptr<BarrierEngine> make_team_barrier(
      int width, const std::string& key) override {
    return std::make_unique<ClusterBarrierEngine>(width, key);
  }

  [[nodiscard]] std::unique_ptr<BasicLock> new_lock(
      LockRole /*role*/, const std::string& label,
      LockObserver* /*observer*/) override {
    // One keyed lock cell on the coordinator. Same label discipline as
    // the shm backend: construct-unique labels mean every member contends
    // on the same coordinator cell.
    return std::make_unique<cluster::ClusterLock>(label);
  }

  [[nodiscard]] ProcessTeam process_team() const override {
    return ProcessTeam(ProcessModelKind::kCluster);
  }

  SpawnStats run_team(int nproc, PrivateSpace* space,
                      const std::function<void(int)>& member,
                      const std::type_info* /*program_type*/) override {
    // The cluster team reads its arena and transport through the installed
    // runtime config (ProcessTeam::run's signature carries neither); the
    // scope guarantees no dangling arena pointer survives this run.
    cluster::ScopedRuntimeConfig cfg({arena_, transport_});
    return ProcessTeam(ProcessModelKind::kCluster).run(nproc, space, member);
  }

 private:
  SharedArena* arena_;
  std::string transport_;
};

}  // namespace

std::unique_ptr<ExecutionBackend> make_execution_backend(
    ProcessModel model, const BackendInit& init) {
  FORCE_CHECK(init.machine != nullptr && init.arena != nullptr,
              "BackendInit needs the machine model and the arena");
  switch (model) {
    case ProcessModel::kThread:
      return std::make_unique<ThreadBackend>(init);
    case ProcessModel::kOsFork:
      return std::make_unique<ShmBackend>(init);
    case ProcessModel::kCluster:
      return std::make_unique<ClusterBackend>(init);
  }
  FORCE_CHECK(false, "unreachable process model");
}

}  // namespace force::machdep
