// Process creation and termination (paper §4.1.1).
//
// A Force program assumes a force of processes exists; the generated driver
// creates them at program start and joins them at the very end. The paper
// reports two creation models on the 1989 machines:
//
//   * the Unix fork/join model (Encore, Sequent, Flex/32, Cray-2): high
//     creation and context-switch cost; each child starts with a complete
//     copy of the parent's data and stack;
//   * the Alliant variation: data segments are shared, only a fresh copy of
//     the stack belongs to the child;
//   * the HEP model: a subroutine call creates a process running that
//     subroutine; returning terminates it - creation is cheap and copies
//     nothing.
//
// ProcessTeam reproduces the *observable* differences over std::jthread:
// which private regions children inherit (via PrivateSpace) and how much
// memory the spawn must copy (the fork cost driver measured in bench E7).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "machdep/arena.hpp"

namespace force::machdep {

enum class ProcessModelKind {
  kForkJoinCopy,    ///< Unix fork: copy data + stack (Sequent/Encore/Flex/Cray)
  kForkSharedData,  ///< Alliant: share data, copy stack only
  kHepCreate        ///< HEP: subroutine-call creation, nothing copied
};

const char* process_model_name(ProcessModelKind kind);

/// Which PrivateSpace region is genuinely per-process under a model; the
/// Force places its private variables there. (Under kForkSharedData the
/// data region is aliased - "private" data there is accidentally shared,
/// which is why the Alliant port must use the stack region.)
PrivateSpace::Region private_region_for(ProcessModelKind kind);

/// Translates a process model into PrivateSpace initialization semantics.
PrivateSpace::InitMode init_mode_for(ProcessModelKind kind);

/// Outcome of one spawn/execute/join cycle.
struct SpawnStats {
  std::int64_t create_ns = 0;      ///< wall time spent creating processes
  std::int64_t join_ns = 0;        ///< wall time spent joining
  std::size_t bytes_copied = 0;    ///< private bytes copied at creation
  int processes = 0;
};

/// Creates the force of processes, runs `entry(proc)` on each (proc is
/// 0-based), and joins them - the driver + Join of a Force program.
///
/// If `space` is non-null it is materialized with the model's semantics
/// before the processes start, so children observe the right inheritance.
/// The first exception thrown by any process is rethrown after all
/// processes have been joined (no thread is ever leaked).
class ProcessTeam {
 public:
  explicit ProcessTeam(ProcessModelKind kind) : kind_(kind) {}

  SpawnStats run(int nproc, PrivateSpace* space,
                 const std::function<void(int)>& entry) const;

  [[nodiscard]] ProcessModelKind kind() const { return kind_; }

 private:
  ProcessModelKind kind_;
};

}  // namespace force::machdep
