// Process creation and termination (paper §4.1.1).
//
// A Force program assumes a force of processes exists; the generated driver
// creates them at program start and joins them at the very end. The paper
// reports two creation models on the 1989 machines:
//
//   * the Unix fork/join model (Encore, Sequent, Flex/32, Cray-2): high
//     creation and context-switch cost; each child starts with a complete
//     copy of the parent's data and stack;
//   * the Alliant variation: data segments are shared, only a fresh copy of
//     the stack belongs to the child;
//   * the HEP model: a subroutine call creates a process running that
//     subroutine; returning terminates it - creation is cheap and copies
//     nothing.
//
// ProcessTeam reproduces the *observable* differences over std::jthread:
// which private regions children inherit (via PrivateSpace) and how much
// memory the spawn must copy (the fork cost driver measured in bench E7).
// ProcessModelKind::kOsFork leaves emulation behind: ProcessTeam::run
// spawns real child processes with fork(2). Shared state must then live in
// MAP_SHARED pages (SharedArena with ArenaBacking::kSharedMapping) and all
// synchronization must be process-shared (machdep/shm.*). Join is robust:
// children are reaped with waitpid, a death is surfaced as a structured
// ProcessDeathError naming the process and its last-known construct site,
// and the surviving processes are released within a bounded wait by
// poisoning the team instead of being left parked forever.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "machdep/arena.hpp"

namespace force::machdep {

enum class ProcessModelKind {
  kForkJoinCopy,    ///< Unix fork: copy data + stack (Sequent/Encore/Flex/Cray)
  kForkSharedData,  ///< Alliant: share data, copy stack only
  kHepCreate,       ///< HEP: subroutine-call creation, nothing copied
  kOsFork,          ///< real fork(2) children over a MAP_SHARED arena
  kCluster          ///< separate processes, no shared mapping: socket
                    ///< transport + software distributed-shared-arena
};

const char* process_model_name(ProcessModelKind kind);

/// Which PrivateSpace region is genuinely per-process under a model; the
/// Force places its private variables there. (Under kForkSharedData the
/// data region is aliased - "private" data there is accidentally shared,
/// which is why the Alliant port must use the stack region.)
PrivateSpace::Region private_region_for(ProcessModelKind kind);

/// Translates a process model into PrivateSpace initialization semantics.
PrivateSpace::InitMode init_mode_for(ProcessModelKind kind);

/// A child of a kOsFork team exited nonzero or died on a signal. Carries
/// the 1-based process number, its pid, how it died, the last construct
/// site the process recorded before dying, and any error text it wrote
/// into its control slot.
class ProcessDeathError : public std::runtime_error {
 public:
  ProcessDeathError(const std::string& what, int proc1, long pid,
                    int exit_code, int term_signal, std::string site,
                    std::string error_text)
      : std::runtime_error(what),
        proc1_(proc1),
        pid_(pid),
        exit_code_(exit_code),
        term_signal_(term_signal),
        site_(std::move(site)),
        error_text_(std::move(error_text)) {}

  /// 1-based process number, Force convention.
  [[nodiscard]] int process() const { return proc1_; }
  [[nodiscard]] long pid() const { return pid_; }
  /// Exit code, or -1 when the child died on a signal.
  [[nodiscard]] int exit_code() const { return exit_code_; }
  /// Terminating signal, or 0 when the child exited.
  [[nodiscard]] int term_signal() const { return term_signal_; }
  /// Last construct site the child noted ("startup" if none).
  [[nodiscard]] const std::string& site() const { return site_; }
  /// what() of the exception the child died with, if it managed to record
  /// one; empty for signal deaths.
  [[nodiscard]] const std::string& error_text() const { return error_text_; }

 private:
  int proc1_;
  long pid_;
  int exit_code_;
  int term_signal_;
  std::string site_;
  std::string error_text_;
};

/// Exit code a forked child uses when it dies as *collateral* of a team
/// poisoning (a TeamPoisoned unwind): the parent reports only the primary
/// death, not the releases it caused.
constexpr int kPoisonCollateralExit = 103;

/// Outcome of one spawn/execute/join cycle.
struct SpawnStats {
  std::int64_t create_ns = 0;      ///< wall time spent creating processes
  std::int64_t join_ns = 0;        ///< wall time spent joining
  std::size_t bytes_copied = 0;    ///< private bytes copied at creation
  int processes = 0;
};

/// Creates the force of processes, runs `entry(proc)` on each (proc is
/// 0-based), and joins them - the driver + Join of a Force program.
///
/// If `space` is non-null it is materialized with the model's semantics
/// before the processes start, so children observe the right inheritance.
/// The first exception thrown by any process is rethrown after all
/// processes have been joined (no thread is ever leaked).
class ProcessTeam {
 public:
  explicit ProcessTeam(ProcessModelKind kind) : kind_(kind) {}

  SpawnStats run(int nproc, PrivateSpace* space,
                 const std::function<void(int)>& entry) const;

  [[nodiscard]] ProcessModelKind kind() const { return kind_; }

 private:
  /// The real-fork backend: children run `entry` and _Exit; the parent
  /// reaps with waitpid, poisons the team on the first abnormal status,
  /// grants survivors a bounded grace period, then SIGKILLs stragglers
  /// and throws ProcessDeathError for the primary death.
  SpawnStats run_os_fork(int nproc, PrivateSpace* space,
                         const std::function<void(int)>& entry) const;

  ProcessModelKind kind_;
};

}  // namespace force::machdep
