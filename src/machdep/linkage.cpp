#include "machdep/linkage.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace force::machdep {

void LinkageRegistry::register_module(const std::string& module_name,
                                      StartupFn startup) {
  FORCE_CHECK(!has_module(module_name),
              "duplicate Force module name: " + module_name);
  FORCE_CHECK(startup != nullptr, "null startup routine");
  modules_.push_back({module_name, std::move(startup)});
}

bool LinkageRegistry::has_module(const std::string& module_name) const {
  return std::any_of(modules_.begin(), modules_.end(),
                     [&](const Module& m) { return m.name == module_name; });
}

std::vector<std::string> LinkageRegistry::module_names() const {
  std::vector<std::string> names;
  names.reserve(modules_.size());
  for (const auto& m : modules_) names.push_back(m.name);
  return names;
}

std::size_t LinkageRegistry::run_startup(SharedArena& arena) const {
  for (const auto& m : modules_) m.startup(arena);
  if (arena.strategy() == SharingStrategy::kLinkTime && !arena.linked()) {
    arena.link();
  }
  return modules_.size();
}

}  // namespace force::machdep
