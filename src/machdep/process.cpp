#include "machdep/process.hpp"

#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.hpp"
#include "util/timing.hpp"

namespace force::machdep {

const char* process_model_name(ProcessModelKind kind) {
  switch (kind) {
    case ProcessModelKind::kForkJoinCopy: return "fork-join-copy";
    case ProcessModelKind::kForkSharedData: return "fork-shared-data";
    case ProcessModelKind::kHepCreate: return "hep-create";
  }
  return "unknown";
}

PrivateSpace::Region private_region_for(ProcessModelKind kind) {
  // Only the stack is truly private under the Alliant model.
  return kind == ProcessModelKind::kForkSharedData
             ? PrivateSpace::Region::kStack
             : PrivateSpace::Region::kData;
}

PrivateSpace::InitMode init_mode_for(ProcessModelKind kind) {
  switch (kind) {
    case ProcessModelKind::kForkJoinCopy:
      return PrivateSpace::InitMode::kCopyBoth;
    case ProcessModelKind::kForkSharedData:
      return PrivateSpace::InitMode::kShareDataCopyStack;
    case ProcessModelKind::kHepCreate:
      return PrivateSpace::InitMode::kZeroBoth;
  }
  return PrivateSpace::InitMode::kZeroBoth;
}

SpawnStats ProcessTeam::run(int nproc, PrivateSpace* space,
                            const std::function<void(int)>& entry) const {
  FORCE_CHECK(nproc > 0, "a force needs at least one process");
  SpawnStats stats;
  stats.processes = nproc;

  const std::int64_t t0 = util::now_ns();
  if (space != nullptr) {
    // The parent performs the fork-time copies before any child runs,
    // exactly as fork() charges the copy to process creation.
    space->materialize(nproc, init_mode_for(kind_));
    stats.bytes_copied = space->bytes_copied();
  }

  std::mutex error_mutex;
  std::exception_ptr first_error;

  {
    std::vector<std::jthread> team;
    team.reserve(static_cast<std::size_t>(nproc));
    for (int proc = 0; proc < nproc; ++proc) {
      team.emplace_back([&, proc] {
        try {
          entry(proc);
        } catch (...) {
          std::lock_guard<std::mutex> g(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    stats.create_ns = util::now_ns() - t0;
    const std::int64_t t1 = util::now_ns();
    // jthread joins on destruction (scope exit) - the Force Join statement.
    team.clear();
    stats.join_ns = util::now_ns() - t1;
  }

  if (first_error) std::rethrow_exception(first_error);
  return stats;
}

}  // namespace force::machdep
