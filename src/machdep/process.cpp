#include "machdep/process.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <new>
#include <sstream>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "machdep/cluster.hpp"
#include "machdep/shm.hpp"
#include "util/check.hpp"
#include "util/timing.hpp"

namespace force::machdep {

const char* process_model_name(ProcessModelKind kind) {
  switch (kind) {
    case ProcessModelKind::kForkJoinCopy: return "fork-join-copy";
    case ProcessModelKind::kForkSharedData: return "fork-shared-data";
    case ProcessModelKind::kHepCreate: return "hep-create";
    case ProcessModelKind::kOsFork: return "os-fork";
    case ProcessModelKind::kCluster: return "cluster";
  }
  return "unknown";
}

PrivateSpace::Region private_region_for(ProcessModelKind kind) {
  // Only the stack is truly private under the Alliant model.
  return kind == ProcessModelKind::kForkSharedData
             ? PrivateSpace::Region::kStack
             : PrivateSpace::Region::kData;
}

PrivateSpace::InitMode init_mode_for(ProcessModelKind kind) {
  switch (kind) {
    case ProcessModelKind::kForkJoinCopy:
    case ProcessModelKind::kOsFork:
    case ProcessModelKind::kCluster:
      // Real fork gives every child COW copies of data and stack; the
      // emulated kCopyBoth charges the same copies to creation time.
      return PrivateSpace::InitMode::kCopyBoth;
    case ProcessModelKind::kForkSharedData:
      return PrivateSpace::InitMode::kShareDataCopyStack;
    case ProcessModelKind::kHepCreate:
      return PrivateSpace::InitMode::kZeroBoth;
  }
  return PrivateSpace::InitMode::kZeroBoth;
}

SpawnStats ProcessTeam::run(int nproc, PrivateSpace* space,
                            const std::function<void(int)>& entry) const {
  FORCE_CHECK(nproc > 0, "a force needs at least one process");
  if (kind_ == ProcessModelKind::kOsFork) {
    return run_os_fork(nproc, space, entry);
  }
  if (kind_ == ProcessModelKind::kCluster) {
    return cluster::run_cluster_team(nproc, space, entry);
  }
  SpawnStats stats;
  stats.processes = nproc;

  const std::int64_t t0 = util::now_ns();
  if (space != nullptr) {
    // The parent performs the fork-time copies before any child runs,
    // exactly as fork() charges the copy to process creation.
    space->materialize(nproc, init_mode_for(kind_));
    stats.bytes_copied = space->bytes_copied();
  }

  std::mutex error_mutex;
  std::exception_ptr first_error;

  {
    std::vector<std::jthread> team;
    team.reserve(static_cast<std::size_t>(nproc));
    for (int proc = 0; proc < nproc; ++proc) {
      team.emplace_back([&, proc] {
        try {
          entry(proc);
        } catch (...) {
          std::lock_guard<std::mutex> g(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    stats.create_ns = util::now_ns() - t0;
    const std::int64_t t1 = util::now_ns();
    // jthread joins on destruction (scope exit) - the Force Join statement.
    team.clear();
    stats.join_ns = util::now_ns() - t1;
  }

  if (first_error) std::rethrow_exception(first_error);
  return stats;
}

// --- the real-fork backend -------------------------------------------------

namespace {

/// Per-child control slot inside the team control mapping. The child keeps
/// its last-known construct site current (via shm::set_site_slot) and, if
/// it dies on a C++ exception, copies the what() text here before _Exit so
/// the parent can report it from the other side of the address-space gap.
struct ProcSlot {
  char site[128];
  char error[256];
};

/// Head of the team control mapping: the poison word every shm wait
/// re-checks, followed by one ProcSlot per process.
struct TeamControl {
  std::atomic<std::uint32_t> poison{0};
};

}  // namespace

#if defined(__unix__) || defined(__APPLE__)

SpawnStats ProcessTeam::run_os_fork(
    int nproc, PrivateSpace* space,
    const std::function<void(int)>& entry) const {
  SpawnStats stats;
  stats.processes = nproc;

  const std::int64_t t0 = util::now_ns();
  if (space != nullptr) {
    space->materialize(nproc, init_mode_for(kind_));
    stats.bytes_copied = space->bytes_copied();
  }

  // Control mapping: created before the forks so every process addresses
  // the poison word and the slots at the same virtual address.
  const std::size_t control_bytes =
      sizeof(TeamControl) + static_cast<std::size_t>(nproc) * sizeof(ProcSlot);
  shm::SharedMapping control(control_bytes);
  auto* team = ::new (control.data()) TeamControl();
  auto* slots = reinterpret_cast<ProcSlot*>(
      static_cast<std::byte*>(control.data()) + sizeof(TeamControl));
  for (int p = 0; p < nproc; ++p) {
    std::strncpy(slots[p].site, "startup", sizeof(slots[p].site) - 1);
    slots[p].error[0] = '\0';
  }

  shm::set_team_poison(&team->poison);

  // Flush before forking: children inherit the parent's stdio buffers, so
  // anything pending here would be written once per child. After this,
  // whatever a child buffers is its own and is flushed before _Exit below.
  std::fflush(nullptr);

  std::vector<pid_t> pids(static_cast<std::size_t>(nproc), -1);
  for (int proc = 0; proc < nproc; ++proc) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Child. Never return into the parent's driver: _Exit skips atexit
      // handlers that belong to the parent; stdio the *child* buffered
      // (member-program printf) is flushed explicitly so it isn't lost.
      ProcSlot& slot = slots[proc];
      shm::set_site_slot(slot.site, sizeof(slot.site));
      try {
        entry(proc);
        std::fflush(nullptr);
        std::_Exit(0);
      } catch (const shm::TeamPoisoned&) {
        // Collateral of a sibling's death; the parent reports only the
        // primary failure.
        std::fflush(nullptr);
        std::_Exit(kPoisonCollateralExit);
      } catch (const std::exception& e) {
        std::strncpy(slot.error, e.what(), sizeof(slot.error) - 1);
        slot.error[sizeof(slot.error) - 1] = '\0';
        std::fflush(nullptr);
        std::_Exit(1);
      } catch (...) {
        std::strncpy(slot.error, "unknown exception",
                     sizeof(slot.error) - 1);
        std::fflush(nullptr);
        std::_Exit(1);
      }
    }
    if (pid < 0) {
      // fork failed: poison so already-spawned children release, then reap.
      team->poison.store(1, std::memory_order_release);
      shm::futex_wake(&team->poison, -1);
      for (int k = 0; k < proc; ++k) {
        if (pids[static_cast<std::size_t>(k)] > 0) {
          int status = 0;
          ::waitpid(pids[static_cast<std::size_t>(k)], &status, 0);
        }
      }
      shm::set_team_poison(nullptr);
      FORCE_CHECK(false, "fork() failed spawning force process " +
                             std::to_string(proc + 1) + " of " +
                             std::to_string(nproc));
    }
    pids[static_cast<std::size_t>(proc)] = pid;
  }
  stats.create_ns = util::now_ns() - t0;

  // Robust join: reap with a WNOHANG poll so the first abnormal status is
  // seen promptly; on it, poison the team (bounded-wait release of every
  // survivor parked in a shm primitive) and grant a grace period before
  // SIGKILLing stragglers. The parent never blocks unboundedly on a dead
  // team.
  const std::int64_t t1 = util::now_ns();
  constexpr std::int64_t kGraceNs = 5'000'000'000;  // 5 s after poisoning
  int live = nproc;
  int primary_proc = -1;       // 0-based index of the primary death
  pid_t primary_pid = -1;
  int primary_status = 0;
  std::int64_t poisoned_at = -1;
  bool killed_stragglers = false;

  while (live > 0) {
    bool reaped_any = false;
    for (int p = 0; p < nproc; ++p) {
      auto& pid = pids[static_cast<std::size_t>(p)];
      if (pid <= 0) continue;
      int status = 0;
      const pid_t r = ::waitpid(pid, &status, WNOHANG);
      if (r == 0) continue;
      FORCE_CHECK(r == pid, "waitpid lost track of a force process");
      pid = -1;
      --live;
      reaped_any = true;
      const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
      const bool collateral =
          WIFEXITED(status) && WEXITSTATUS(status) == kPoisonCollateralExit;
      if (!clean && !collateral && primary_proc < 0) {
        primary_proc = p;
        primary_pid = r;
        primary_status = status;
        team->poison.store(1, std::memory_order_release);
        shm::futex_wake(&team->poison, -1);
        poisoned_at = util::now_ns();
      }
    }
    if (live == 0) break;
    if (poisoned_at >= 0 && !killed_stragglers &&
        util::now_ns() - poisoned_at > kGraceNs) {
      for (int p = 0; p < nproc; ++p) {
        if (pids[static_cast<std::size_t>(p)] > 0) {
          ::kill(pids[static_cast<std::size_t>(p)], SIGKILL);
        }
      }
      killed_stragglers = true;
    }
    if (!reaped_any) {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  }
  stats.join_ns = util::now_ns() - t1;

  shm::set_team_poison(nullptr);

  if (primary_proc >= 0) {
    const ProcSlot& slot = slots[primary_proc];
    const std::string site(slot.site);
    const std::string error_text(slot.error);
    const int exit_code =
        WIFEXITED(primary_status) ? WEXITSTATUS(primary_status) : -1;
    const int term_signal =
        WIFSIGNALED(primary_status) ? WTERMSIG(primary_status) : 0;
    std::ostringstream msg;
    msg << "force process " << (primary_proc + 1) << " of " << nproc
        << " (pid " << primary_pid << ")";
    if (term_signal != 0) {
      msg << " killed by signal " << term_signal;
    } else {
      msg << " exited with code " << exit_code;
    }
    msg << " at construct site '" << site << "'";
    if (!error_text.empty()) msg << ": " << error_text;
    msg << " (surviving processes released by team poison)";
    throw ProcessDeathError(msg.str(), primary_proc + 1,
                            static_cast<long>(primary_pid), exit_code,
                            term_signal, site, error_text);
  }
  return stats;
}

#else  // !(__unix__ || __APPLE__)

SpawnStats ProcessTeam::run_os_fork(int, PrivateSpace*,
                                    const std::function<void(int)>&) const {
  FORCE_CHECK(false,
              "the os-fork process model needs a POSIX host (fork/waitpid); "
              "use a thread-emulated machine model on this platform");
  return {};
}

#endif

}  // namespace force::machdep
