#include "machdep/locks.hpp"

#include <algorithm>
#include <thread>

#include "machdep/fiber.hpp"
#include "machdep/hepcell.hpp"
#include "util/check.hpp"

namespace force::machdep {

namespace {

/// One polite CPU pause inside a spin loop.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

inline void bump(LockCounters* c, std::atomic<std::uint64_t> LockCounters::*f,
                 std::uint64_t n = 1) {
  if (c != nullptr) (c->*f).fetch_add(n, std::memory_order_relaxed);
}

/// Shared spin helper: pauses, counts, and yields past the budget so that
/// oversubscribed hosts (fewer CPUs than Force processes) stay live.
struct Spinner {
  explicit Spinner(LockCounters* counters, std::uint32_t spins_before_yield)
      : counters_(counters), budget_(spins_before_yield) {}
  ~Spinner() { bump(counters_, &LockCounters::spin_iterations, spins_); }

  void spin_once() {
    ++spins_;
    if (spins_ % (budget_ == 0 ? 1 : budget_) == 0) {
      // member_yield: OS yield on a plain thread, a continuation switch
      // inside an N:M pooled member - the lock holder may be a sibling
      // member multiplexed onto this very worker thread.
      member_yield();
    } else {
      cpu_relax();
    }
  }

  LockCounters* counters_;
  std::uint32_t budget_;
  std::uint64_t spins_ = 0;
};

}  // namespace

LockCountersSnapshot LockCountersSnapshot::operator-(
    const LockCountersSnapshot& rhs) const {
  LockCountersSnapshot d;
  d.acquires = acquires - rhs.acquires;
  d.contended_acquires = contended_acquires - rhs.contended_acquires;
  d.spin_iterations = spin_iterations - rhs.spin_iterations;
  d.blocking_waits = blocking_waits - rhs.blocking_waits;
  d.releases = releases - rhs.releases;
  return d;
}

LockCountersSnapshot snapshot(const LockCounters& c) {
  LockCountersSnapshot s;
  s.acquires = c.acquires.load(std::memory_order_relaxed);
  s.contended_acquires = c.contended_acquires.load(std::memory_order_relaxed);
  s.spin_iterations = c.spin_iterations.load(std::memory_order_relaxed);
  s.blocking_waits = c.blocking_waits.load(std::memory_order_relaxed);
  s.releases = c.releases.load(std::memory_order_relaxed);
  return s;
}

const char* lock_kind_name(LockKind kind) {
  switch (kind) {
    case LockKind::kTasSpin: return "tas-spin";
    case LockKind::kTtasSpin: return "ttas-spin";
    case LockKind::kTicket: return "ticket";
    case LockKind::kMcs: return "mcs";
    case LockKind::kSystem: return "system";
    case LockKind::kCombined: return "combined";
    case LockKind::kHepFullEmpty: return "hep-full-empty";
  }
  return "unknown";
}

LockKind lock_kind_from_name(const std::string& name) {
  for (LockKind k :
       {LockKind::kTasSpin, LockKind::kTtasSpin, LockKind::kTicket,
        LockKind::kMcs, LockKind::kSystem, LockKind::kCombined,
        LockKind::kHepFullEmpty}) {
    if (name == lock_kind_name(k)) return k;
  }
  FORCE_CHECK(false, "unknown lock kind: " + name);
}

// ---------------------------------------------------------------------------
// TasSpinLock
// ---------------------------------------------------------------------------

TasSpinLock::TasSpinLock(LockCounters* counters, const SpinPolicy& policy)
    : counters_(counters), policy_(policy) {}

void TasSpinLock::acquire() {
  bump(counters_, &LockCounters::acquires);
  if (!held_.exchange(true, std::memory_order_acquire)) return;
  bump(counters_, &LockCounters::contended_acquires);
  Spinner spinner(counters_, policy_.spins_before_yield);
  // Naked test&set on every probe: the historically faithful (and
  // coherence-hostile) behaviour of the Sequent/Encore software lock.
  while (held_.exchange(true, std::memory_order_acquire)) {
    spinner.spin_once();
  }
}

bool TasSpinLock::try_acquire() {
  bump(counters_, &LockCounters::acquires);
  return !held_.exchange(true, std::memory_order_acquire);
}

void TasSpinLock::release() {
  bump(counters_, &LockCounters::releases);
  held_.store(false, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// TtasLock
// ---------------------------------------------------------------------------

TtasLock::TtasLock(LockCounters* counters, const SpinPolicy& policy)
    : counters_(counters), policy_(policy) {}

void TtasLock::acquire() {
  bump(counters_, &LockCounters::acquires);
  if (!held_.exchange(true, std::memory_order_acquire)) return;
  bump(counters_, &LockCounters::contended_acquires);
  Spinner spinner(counters_, policy_.spins_before_yield);
  std::uint32_t backoff = 1;
  for (;;) {
    // Read-only probe loop first: no coherence traffic while held.
    while (held_.load(std::memory_order_relaxed)) {
      for (std::uint32_t i = 0; i < backoff; ++i) cpu_relax();
      spinner.spin_once();
      if (backoff < policy_.max_backoff) backoff *= 2;
    }
    if (!held_.exchange(true, std::memory_order_acquire)) return;
  }
}

bool TtasLock::try_acquire() {
  bump(counters_, &LockCounters::acquires);
  if (held_.load(std::memory_order_relaxed)) return false;
  return !held_.exchange(true, std::memory_order_acquire);
}

void TtasLock::release() {
  bump(counters_, &LockCounters::releases);
  held_.store(false, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// TicketLock
// ---------------------------------------------------------------------------

TicketLock::TicketLock(LockCounters* counters, const SpinPolicy& policy)
    : counters_(counters), policy_(policy) {}

void TicketLock::acquire() {
  bump(counters_, &LockCounters::acquires);
  const std::uint32_t my = next_.fetch_add(1, std::memory_order_relaxed);
  if (serving_.load(std::memory_order_acquire) == my) return;
  bump(counters_, &LockCounters::contended_acquires);
  Spinner spinner(counters_, policy_.spins_before_yield);
  while (serving_.load(std::memory_order_acquire) != my) {
    spinner.spin_once();
  }
}

bool TicketLock::try_acquire() {
  bump(counters_, &LockCounters::acquires);
  std::uint32_t s = serving_.load(std::memory_order_acquire);
  std::uint32_t expected = s;
  // Succeed only if no one is queued: next_ == serving_.
  return next_.compare_exchange_strong(expected, s + 1,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed);
}

void TicketLock::release() {
  bump(counters_, &LockCounters::releases);
  serving_.fetch_add(1, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// McsLock
// ---------------------------------------------------------------------------

McsLock::McsLock(LockCounters* counters, const SpinPolicy& policy)
    : counters_(counters), policy_(policy) {}

McsLock::~McsLock() {
  Node* n = free_head_;
  while (n != nullptr) {
    Node* next = n->free_next;
    delete n;
    n = next;
  }
}

McsLock::Node* McsLock::alloc_node() {
  {
    std::lock_guard<std::mutex> g(free_mutex_);
    if (free_head_ != nullptr) {
      Node* n = free_head_;
      free_head_ = n->free_next;
      n->next.store(nullptr, std::memory_order_relaxed);
      n->ready.store(false, std::memory_order_relaxed);
      n->free_next = nullptr;
      return n;
    }
  }
  return new Node();
}

void McsLock::recycle_node(Node* n) {
  std::lock_guard<std::mutex> g(free_mutex_);
  n->free_next = free_head_;
  free_head_ = n;
}

void McsLock::acquire() {
  bump(counters_, &LockCounters::acquires);
  Node* node = alloc_node();
  Node* prev = tail_.exchange(node, std::memory_order_acq_rel);
  if (prev != nullptr) {
    bump(counters_, &LockCounters::contended_acquires);
    prev->next.store(node, std::memory_order_release);
    Spinner spinner(counters_, policy_.spins_before_yield);
    while (!node->ready.load(std::memory_order_acquire)) {
      spinner.spin_once();
    }
  }
  owner_.store(node, std::memory_order_release);
}

bool McsLock::try_acquire() {
  bump(counters_, &LockCounters::acquires);
  if (tail_.load(std::memory_order_relaxed) != nullptr) return false;
  Node* node = alloc_node();
  Node* expected = nullptr;
  if (tail_.compare_exchange_strong(expected, node,
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
    owner_.store(node, std::memory_order_release);
    return true;
  }
  recycle_node(node);
  return false;
}

void McsLock::release() {
  bump(counters_, &LockCounters::releases);
  Node* node = owner_.load(std::memory_order_acquire);
  FORCE_CHECK(node != nullptr, "McsLock released while not held");
  owner_.store(nullptr, std::memory_order_relaxed);
  Node* expected = node;
  if (node->next.load(std::memory_order_acquire) == nullptr) {
    if (tail_.compare_exchange_strong(expected, nullptr,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      recycle_node(node);
      return;
    }
    // A successor is mid-enqueue: wait for its next-pointer store.
    Spinner spinner(counters_, policy_.spins_before_yield);
    while (node->next.load(std::memory_order_acquire) == nullptr) {
      spinner.spin_once();
    }
  }
  node->next.load(std::memory_order_acquire)
      ->ready.store(true, std::memory_order_release);
  recycle_node(node);
}

// ---------------------------------------------------------------------------
// SystemLock
// ---------------------------------------------------------------------------

SystemLock::SystemLock(LockCounters* counters) : counters_(counters) {}

void SystemLock::acquire() {
  bump(counters_, &LockCounters::acquires);
  if (on_fiber()) {
    // A member continuation must never block its worker thread in the
    // kernel: the release it waits for may come from a sibling member
    // multiplexed onto this same worker. Poll and hand the worker over.
    bool contended = false;
    for (;;) {
      {
        std::lock_guard<std::mutex> lk(m_);
        if (!held_) {
          held_ = true;
          return;
        }
      }
      if (!contended) {
        bump(counters_, &LockCounters::contended_acquires);
        bump(counters_, &LockCounters::blocking_waits);
        contended = true;
      }
      member_yield();
    }
  }
  std::unique_lock<std::mutex> lk(m_);
  if (held_) {
    bump(counters_, &LockCounters::contended_acquires);
    bump(counters_, &LockCounters::blocking_waits);
    cv_.wait(lk, [&] { return !held_; });
  }
  held_ = true;
}

bool SystemLock::try_acquire() {
  bump(counters_, &LockCounters::acquires);
  std::lock_guard<std::mutex> lk(m_);
  if (held_) return false;
  held_ = true;
  return true;
}

void SystemLock::release() {
  bump(counters_, &LockCounters::releases);
  {
    std::lock_guard<std::mutex> lk(m_);
    held_ = false;
  }
  cv_.notify_one();
}

// ---------------------------------------------------------------------------
// CombinedLock
// ---------------------------------------------------------------------------

CombinedLock::CombinedLock(LockCounters* counters, const SpinPolicy& policy)
    : counters_(counters), policy_(policy) {}

void CombinedLock::acquire() {
  bump(counters_, &LockCounters::acquires);
  if (!held_.exchange(true, std::memory_order_acquire)) return;
  bump(counters_, &LockCounters::contended_acquires);
  // Phase 1: spin for a bounded budget (short critical sections win here).
  {
    Spinner spinner(counters_, policy_.spins_before_yield);
    for (std::uint32_t probe = 0; probe < policy_.combined_spin_budget;
         ++probe) {
      if (!held_.load(std::memory_order_relaxed) &&
          !held_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      spinner.spin_once();
    }
  }
  // Phase 2: give up the CPU and let the scheduler wake us (long holds).
  bump(counters_, &LockCounters::blocking_waits);
  if (on_fiber()) {
    // No kernel sleep inside a member continuation (see SystemLock);
    // keep polling, yielding the worker to sibling members in between.
    while (held_.exchange(true, std::memory_order_acquire)) {
      member_yield();
    }
    return;
  }
  std::unique_lock<std::mutex> lk(m_);
  sleepers_.fetch_add(1, std::memory_order_relaxed);
  cv_.wait(lk, [&] { return !held_.exchange(true, std::memory_order_acquire); });
  sleepers_.fetch_sub(1, std::memory_order_relaxed);
}

bool CombinedLock::try_acquire() {
  bump(counters_, &LockCounters::acquires);
  return !held_.exchange(true, std::memory_order_acquire);
}

void CombinedLock::release() {
  bump(counters_, &LockCounters::releases);
  held_.store(false, std::memory_order_release);
  if (sleepers_.load(std::memory_order_relaxed) > 0) {
    // Taking the mutex orders this notify after any in-flight wait entry,
    // so a sleeper cannot miss the wakeup.
    std::lock_guard<std::mutex> lk(m_);
    cv_.notify_one();
  }
}

// ---------------------------------------------------------------------------
// DispatchCounter
// ---------------------------------------------------------------------------

DispatchCounter::DispatchCounter() : pad_{} {}

DispatchCounter::DispatchCounter(std::unique_ptr<BasicLock> lock)
    : pad_{}, lock_(std::move(lock)) {
  FORCE_CHECK(lock_ != nullptr, "lock-engine DispatchCounter needs a lock");
}

void DispatchCounter::reset(std::int64_t v) {
  // Single-threaded by contract; the caller's gate release publishes it.
  value_.store(v, std::memory_order_relaxed);
}

std::int64_t DispatchCounter::value() const {
  if (lock_ == nullptr) return value_.load(std::memory_order_acquire);
  lock_->acquire();
  const std::int64_t v = value_.load(std::memory_order_relaxed);
  lock_->release();
  return v;
}

DispatchClaim DispatchCounter::claim(std::int64_t want, std::int64_t limit) {
  FORCE_CHECK(want >= 1, "dispatch claim must want at least one trip");
  if (lock_ == nullptr) {
    // One fetch-add is the whole fast path. Exactly-once follows from the
    // RMW total order: successive returns tile [reset, ...) contiguously.
    // Plain ordering suffices for the counter itself; the episode gates
    // publish the loop bounds (see reset()).
    const std::int64_t t = value_.fetch_add(want, std::memory_order_acq_rel);
    if (t >= limit) {
      // Exhausted. Pull the runaway value back down to `limit` so that
      // unbounded re-probing can never overflow the counter. Safe: once
      // the value has crossed `limit`, every trip below it has already
      // been granted exactly once, so no lower trip becomes claimable.
      std::int64_t cur = value_.load(std::memory_order_relaxed);
      while (cur > limit && !value_.compare_exchange_weak(
                                cur, limit, std::memory_order_acq_rel,
                                std::memory_order_relaxed)) {
      }
      return {t, 0};
    }
    return {t, std::min(want, limit - t)};
  }
  // Lock engine: the paper's expansion - one generic-lock pass per claim,
  // clamped at the limit so an exhausted loop never advances the counter.
  lock_->acquire();
  const std::int64_t t = value_.load(std::memory_order_relaxed);
  if (t < limit) {
    value_.store(t + std::min(want, limit - t), std::memory_order_relaxed);
  }
  lock_->release();
  if (t >= limit) return {t, 0};
  return {t, std::min(want, limit - t)};
}

DispatchClaim DispatchCounter::claim_fraction(std::int64_t limit,
                                              std::int64_t divisor) {
  FORCE_CHECK(divisor >= 1, "dispatch divisor must be at least one");
  if (lock_ == nullptr) {
    std::int64_t t = value_.load(std::memory_order_relaxed);
    for (;;) {
      if (t >= limit) return {t, 0};
      const std::int64_t want =
          std::max<std::int64_t>(1, (limit - t) / divisor);
      if (value_.compare_exchange_weak(t, t + want,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        return {t, want};
      }
    }
  }
  lock_->acquire();
  const std::int64_t t = value_.load(std::memory_order_relaxed);
  std::int64_t want = 0;
  if (t < limit) {
    want = std::max<std::int64_t>(1, (limit - t) / divisor);
    value_.store(t + want, std::memory_order_relaxed);
  }
  lock_->release();
  return {t, want};
}

// ---------------------------------------------------------------------------
// HEP full/empty lock: a tagged cell initialized full; acquire consumes the
// token, release produces it back. This is how HEP programs spelled locks.
// ---------------------------------------------------------------------------

namespace {

class HepFullEmptyLock final : public BasicLock {
 public:
  explicit HepFullEmptyLock(LockCounters* counters)
      : cell_(1), counters_(counters) {}

  void acquire() override {
    bump(counters_, &LockCounters::acquires);
    std::uint64_t token;
    if (cell_.try_consume(&token)) return;
    bump(counters_, &LockCounters::contended_acquires);
    bump(counters_, &LockCounters::blocking_waits);
    cell_.consume();
  }

  bool try_acquire() override {
    bump(counters_, &LockCounters::acquires);
    std::uint64_t token;
    return cell_.try_consume(&token);
  }

  void release() override {
    bump(counters_, &LockCounters::releases);
    cell_.produce(1);
  }

  const char* mechanism() const override { return "hep-full-empty"; }

 private:
  HepCell cell_;
  LockCounters* counters_;
};

}  // namespace

ObservedLock::ObservedLock(std::unique_ptr<BasicLock> inner,
                           LockObserver* observer, LockRole role,
                           std::string label)
    : inner_(std::move(inner)),
      observer_(observer),
      role_(role),
      label_(std::move(label)) {
  FORCE_CHECK(inner_ != nullptr, "ObservedLock needs an inner lock");
  FORCE_CHECK(observer_ != nullptr, "ObservedLock needs an observer");
}

void ObservedLock::acquire() {
  const std::uint64_t token = observer_->on_acquire_begin(*this);
  inner_->acquire();
  observer_->on_acquired(*this, token);
}

bool ObservedLock::try_acquire() {
  if (!inner_->try_acquire()) return false;
  observer_->on_acquired(*this, 0);
  return true;
}

void ObservedLock::release() {
  // Hook while still held: holder bookkeeping must be cleared before the
  // next acquirer can observe itself as the new holder.
  observer_->on_released(*this);
  inner_->release();
}

std::unique_ptr<BasicLock> make_lock(LockKind kind, LockCounters* counters,
                                     const SpinPolicy& policy) {
  switch (kind) {
    case LockKind::kTasSpin:
      return std::make_unique<TasSpinLock>(counters, policy);
    case LockKind::kTtasSpin:
      return std::make_unique<TtasLock>(counters, policy);
    case LockKind::kTicket:
      return std::make_unique<TicketLock>(counters, policy);
    case LockKind::kMcs:
      return std::make_unique<McsLock>(counters, policy);
    case LockKind::kSystem:
      return std::make_unique<SystemLock>(counters);
    case LockKind::kCombined:
      return std::make_unique<CombinedLock>(counters, policy);
    case LockKind::kHepFullEmpty:
      return std::make_unique<HepFullEmptyLock>(counters);
  }
  FORCE_CHECK(false, "unreachable lock kind");
}

}  // namespace force::machdep
