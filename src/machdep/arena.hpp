// Shared-memory designation (paper §4.1.2).
//
// The Force's declaration macros (shared / shared_common / async / private)
// are machine dependent because 1989 multiprocessors established sharing at
// three different times:
//
//   * compile time  (HEP, Flex/32): shared variables simply live in COMMON;
//     the preprocessor strips the keyword.
//   * link time     (Sequent): every module's startup routine reports its
//     shared names; the program is "run twice", first to collect linker
//     commands, then for real. Modelled by a declare/link/resolve protocol.
//   * run time      (Encore, Alliant): shared variables go into shared
//     pages; the Force pads the start and end of the shared area so that
//     shared and private data never cohabit a page (Encore), and on the
//     Alliant sharing must begin exactly on a page boundary.
//
// SharedArena implements all of these over one page-structured buffer, with
// guard pages whose integrity can be verified, and it enforces the "a small
// shared variable must not straddle a page boundary" rule from the Encore
// port. PrivateSpace models the per-process private data/stack segments
// whose initialization semantics differ across process-creation models.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "machdep/shm.hpp"

namespace force::machdep {

/// When sharing is established on the modelled machine.
enum class SharingStrategy {
  kCompileTime,      ///< HEP, Flex/32: COMMON placement, no ceremony
  kLinkTime,         ///< Sequent: declare -> link() -> resolve
  kRuntimePadded,    ///< Encore: shared pages padded at both ends
  kPageAlignedStart  ///< Alliant: sharing must start on a page boundary
};

const char* sharing_strategy_name(SharingStrategy s);

/// Storage class of an allocation, mirroring the Force declaration macros.
enum class VarClass { kShared, kAsync };

/// What backs the arena's pages.
///
///   * kPrivateHeap    - ordinary heap storage; "sharing" means the thread-
///                       emulated processes all see one address space.
///   * kSharedMapping  - one mmap(MAP_SHARED | MAP_ANONYMOUS) region created
///                       before fork(), so real child processes share the
///                       pages (the kOsFork backend). The allocation
///                       *metadata* (cursor + name table) lives inside the
///                       mapping too, under a process-shared lock, so a
///                       name lazily allocated by one child resolves to the
///                       same offset in every other.
enum class ArenaBacking { kPrivateHeap, kSharedMapping };

const char* arena_backing_name(ArenaBacking b);

// Defined in arena.cpp; live inside the shared mapping under kSharedMapping.
struct ShmArenaHeader;
struct ShmArenaEntry;

/// A page-structured shared memory region.
class SharedArena {
 public:
  /// `capacity_bytes` is rounded up to whole pages. For kRuntimePadded one
  /// guard page is added before and after the usable region; for
  /// kPageAlignedStart the usable region starts exactly on a page boundary.
  /// With kSharedMapping the whole arena - allocation metadata included -
  /// lives in one MAP_SHARED mapping so forked processes stay coherent.
  SharedArena(std::size_t capacity_bytes, std::size_t page_size,
              SharingStrategy strategy,
              ArenaBacking backing = ArenaBacking::kPrivateHeap);

  SharedArena(const SharedArena&) = delete;
  SharedArena& operator=(const SharedArena&) = delete;

  // --- link-time protocol (kLinkTime only; no-ops validated elsewhere) ----

  /// Declares a shared name before link(). Only meaningful for kLinkTime;
  /// other strategies accept and immediately place the allocation.
  void declare(const std::string& name, std::size_t bytes, std::size_t align,
               VarClass cls);
  /// Fixes addresses of all declared names (the "second run" of the Sequent
  /// port). Idempotent calls are an error: the real protocol links once.
  void link();
  [[nodiscard]] bool linked() const { return linked_; }
  [[nodiscard]] ArenaBacking backing() const { return backing_; }
  /// True when the pages are MAP_SHARED, i.e. real forked children see them.
  [[nodiscard]] bool process_shared() const {
    return backing_ == ArenaBacking::kSharedMapping;
  }

  // --- allocation ---------------------------------------------------------

  /// Returns the address of `name`, allocating on first use. For kLinkTime
  /// after link(), the name must have been declared; a new name throws,
  /// modelling the undeclared-shared-variable link failure on the Sequent.
  void* allocate(const std::string& name, std::size_t bytes,
                 std::size_t align, VarClass cls);

  /// Like allocate(), but runs `init` on the storage exactly once, under
  /// the arena lock, the first time the name is placed. Thread-safe
  /// construct-once semantics for shared variables created mid-run.
  void* allocate_once(const std::string& name, std::size_t bytes,
                      std::size_t align, VarClass cls,
                      const std::function<void(void*)>& init);

  /// Address of an already-allocated (or linked) name; throws if unknown.
  [[nodiscard]] void* resolve(const std::string& name) const;
  [[nodiscard]] bool contains_name(const std::string& name) const;

  /// Typed shared variable: default-constructed exactly once, then shared
  /// by every caller of the same name. T must be trivially destructible
  /// (arena storage is reclaimed as raw bytes, Fortran-COMMON style).
  template <typename T>
  T& get_or_create(const std::string& name, VarClass cls = VarClass::kShared) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "shared arena variables are never destroyed");
    void* p = allocate_once(name, sizeof(T), alignof(T), cls,
                            [](void* raw) { ::new (raw) T(); });
    return *static_cast<T*>(p);
  }

  // --- introspection ------------------------------------------------------

  [[nodiscard]] bool is_shared_address(const void* p) const;
  [[nodiscard]] std::size_t page_size() const { return page_size_; }
  [[nodiscard]] std::size_t pages() const;
  [[nodiscard]] std::size_t bytes_used() const;
  [[nodiscard]] std::size_t capacity() const { return usable_bytes_; }
  [[nodiscard]] SharingStrategy strategy() const { return strategy_; }
  /// Page index of an address inside the usable region.
  [[nodiscard]] std::size_t page_of(const void* p) const;

  /// True while the guard pages (kRuntimePadded) still hold their fill
  /// pattern; a false result means private data bled into the shared area,
  /// the exact failure the Encore port's padding exists to prevent.
  [[nodiscard]] bool guards_intact() const;

  /// Number of bytes lost to padding (page-boundary bumps + guards).
  [[nodiscard]] std::size_t padding_bytes() const;

  /// Placement generation: bumped once per allocation placed (lazy or via
  /// link()). Observers that derive per-allocation state - e.g. the
  /// sentry's tracked ranges - can skip re-walking the arena when the
  /// generation is unchanged, which makes pooled force re-entry cheap.
  [[nodiscard]] std::uint64_t generation() const;

  /// Deliberately corrupts a guard byte; used by failure-injection tests.
  void corrupt_guard_for_test();

  /// Visits every placed allocation as (name, address, bytes); used by the
  /// sentry to register linkage-declared shared variables for race
  /// checking. Holds the arena lock for the duration.
  void for_each_allocation(
      const std::function<void(const std::string&, void*, std::size_t)>& fn)
      const;

  /// First byte of the usable region. The cluster backend's software
  /// distributed-shared-arena addresses its update records as offsets from
  /// here; the region start is page-aligned and placement is deterministic,
  /// so the coordinator and every forked peer agree on offsets.
  [[nodiscard]] std::byte* raw_bytes();
  [[nodiscard]] const std::byte* raw_bytes() const;

 private:
  struct Allocation {
    std::size_t offset = 0;
    std::size_t bytes = 0;
    VarClass cls = VarClass::kShared;
    bool placed = false;
    std::size_t align = 1;
  };

  /// Locks either the per-process mutex (heap backing) or the in-mapping
  /// process-shared lock (shared backing), so every metadata operation is
  /// coherent across forked children.
  class Guard;
  friend class Guard;

  std::size_t place(std::size_t bytes, std::size_t align);
  std::byte* usable_base();
  [[nodiscard]] const std::byte* usable_base() const;
  // Unlocked internals; callers hold the Guard.
  void declare_locked(const std::string& name, std::size_t bytes,
                      std::size_t align, VarClass cls);
  void* allocate_locked(const std::string& name, std::size_t bytes,
                        std::size_t align, VarClass cls, bool* created);
  ShmArenaEntry* shm_find_locked(const std::string& name) const;
  ShmArenaEntry* shm_add_locked(const std::string& name, std::size_t bytes,
                                std::size_t align, VarClass cls);

  mutable std::mutex mutex_;

  std::size_t page_size_;
  SharingStrategy strategy_;
  ArenaBacking backing_;
  std::size_t guard_bytes_front_ = 0;
  std::size_t guard_bytes_back_ = 0;
  std::size_t usable_bytes_ = 0;
  std::size_t cursor_ = 0;
  std::size_t padding_bytes_ = 0;
  /// Heap-backing placement generation (the shared backing keeps its
  /// counter in ShmArenaHeader so children agree); atomic so generation()
  /// reads need no Guard.
  std::atomic<std::uint64_t> generation_{0};
  bool linked_ = false;
  std::unique_ptr<std::byte[]> storage_;
  std::size_t storage_bytes_ = 0;
  std::map<std::string, Allocation> allocations_;
  // kSharedMapping only: the mapping holds [metadata header][storage pages].
  std::unique_ptr<shm::SharedMapping> mapping_;
  ShmArenaHeader* shm_header_ = nullptr;
  std::byte* shm_storage_ = nullptr;
};

/// Per-process private storage, split into a data region and a stack region
/// so that the three 1989 process-creation models are distinguishable:
///
///   * fork w/ copied data+stack (Sequent/Encore/Flex/Cray): children start
///     with byte copies of the parent's data AND stack regions;
///   * fork w/ shared data (Alliant): the data region is one buffer aliased
///     by everyone (privates placed there are accidentally shared!); only
///     the stack region is per-process, copied from the parent;
///   * HEP create: both regions are fresh zeroed storage per process.
///
/// Offsets are registered before materialize(); the Force runtime places
/// its private variables in whichever region the machine model says is
/// genuinely private.
class PrivateSpace {
 public:
  enum class Region { kData, kStack };
  enum class InitMode { kCopyBoth, kShareDataCopyStack, kZeroBoth };

  PrivateSpace(std::size_t data_bytes, std::size_t stack_bytes);

  /// Registers a slot before materialize(); returns its offset.
  std::size_t register_slot(Region region, std::size_t bytes,
                            std::size_t align);

  /// Parent-view pointer, valid before and after materialize(). Writes made
  /// here before materialize() are what fork-copy children inherit.
  [[nodiscard]] void* parent_ptr(Region region, std::size_t offset);

  /// Creates the per-process segments for `nproc` processes.
  void materialize(int nproc, InitMode mode);
  [[nodiscard]] bool materialized() const { return materialized_; }
  /// Total bytes copied during materialize (the fork cost driver).
  [[nodiscard]] std::size_t bytes_copied() const { return bytes_copied_; }

  /// Pointer for process `proc` (0-based). Under kShareDataCopyStack the
  /// data region resolves to the parent's buffer for every process.
  [[nodiscard]] void* ptr(int proc, Region region, std::size_t offset);

  [[nodiscard]] int nproc() const { return nproc_; }

 private:
  struct RegionState {
    std::size_t capacity = 0;
    std::size_t cursor = 0;
    std::unique_ptr<std::byte[]> parent;
    std::vector<std::unique_ptr<std::byte[]>> per_process;
    bool aliased_to_parent = false;
  };
  RegionState& state(Region r) {
    return r == Region::kData ? data_ : stack_;
  }

  RegionState data_;
  RegionState stack_;
  bool materialized_ = false;
  int nproc_ = 0;
  std::size_t bytes_copied_ = 0;
};

}  // namespace force::machdep
