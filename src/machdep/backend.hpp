// The execution-backend seam between core/ constructs and the three process
// substrates.
//
// The Force's portability claim is that one program runs unchanged across
// machine models, yet the original construct code hand-branched on "is this
// the os-fork backend? the cluster backend?" at every site, and the narrowing
// rules (what each substrate rejects) were duplicated between those runtime
// checks and forcelint's R7 portability matrix. This header fixes both:
//
//   * ProcessModel / ExecutionBackend - the process substrate is chosen ONCE
//     (ForceEnvironment construction) and every construct talks to one
//     polymorphic surface. ThreadBackend returns null construct engines, so
//     the thread axis keeps its monomorphic, inlined machinery (in
//     particular the lock-free DispatchCounter fast path); ShmBackend and
//     ClusterBackend hand out engines over machdep/shm and machdep/cluster.
//     Core never names a backend (enforced by a CI layering lint).
//
//   * Capability / capability_table() - ONE declarative table of what each
//     backend supports, consumed by (a) runtime rejection diagnostics
//     (capability_reject_message gives every rejected construct the same
//     shape: construct, site, backend, capability, reason), (b) forcelint
//     R7's static portability matrix (src/preproc/lint.cpp), and (c) the
//     generated matrix in docs/PORTING.md. A conformance test
//     (tests/test_backend_capabilities.cpp) proves all three agree.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <typeinfo>
#include <vector>

#include "machdep/locks.hpp"
#include "machdep/process.hpp"

namespace force::machdep {

class MachineModel;    // machdep/machine.hpp
class SharedArena;     // machdep/arena.hpp
class TeamPool;        // machdep/teampool.hpp
class ForkTeamPool;    // machdep/teampool.hpp

// ---------------------------------------------------------------------------
// Process model: which substrate runs the force members.
//
// Distinct from ProcessModelKind (machdep/process.hpp), which is the
// *machine-spec* axis describing how a 1989 machine created processes. This
// enum is the *configuration* axis: what ForceConfig::process_model selects.
// ---------------------------------------------------------------------------

enum class ProcessModel {
  kThread,   ///< thread-emulated processes under a machine model (default)
  kOsFork,   ///< fork(2) children over a MAP_SHARED arena (machdep/shm)
  kCluster,  ///< separate processes, coordinator RPCs (machdep/cluster)
};

/// "thread" / "os-fork" / "cluster" - the names forcelint's portability
/// matrix and --process-model use. Overloads the ProcessModelKind spelling.
[[nodiscard]] const char* process_model_name(ProcessModel model);

/// Every model, in a fixed order: drives forcelint's matrix rendering and
/// the capability conformance tests.
[[nodiscard]] const std::vector<ProcessModel>& all_process_models();

/// Parses a ForceConfig::process_model / forcepp --process-model value.
/// "machine" (the historic default spelling) and "thread" both name the
/// thread-emulated model. Returns false on unknown text.
[[nodiscard]] bool parse_process_model(const std::string& text,
                                       ProcessModel* out);

/// The valid spellings, for diagnostics on unparseable values.
[[nodiscard]] const char* process_model_valid_set();

// ---------------------------------------------------------------------------
// Capabilities: the one declarative table of backend narrowing rules.
// ---------------------------------------------------------------------------

enum class Capability {
  kPcase,                   ///< Pcase section negotiation
  kResolve,                 ///< Resolve component scheduling
  kSentry,                  ///< runtime race/deadlock sentry
  kTrace,                   ///< per-member event tracing
  kTeamPool,                ///< persistent (pre-spawned) team pools
  kNmScheduling,            ///< N:M member multiplexing (pool_workers > 0)
  kNonTrivialPayloads,      ///< Askfor/Async/Reduce payloads that are not
                            ///< provably trivially copyable
  kIsfull,                  ///< non-blocking full/empty probe of a cell
  kThreadBarrierAlgorithms  ///< named thread barrier algorithms
};

/// One row of the capability matrix.
struct CapabilityRow {
  Capability cap;
  const char* id;         ///< stable kebab-case id, e.g. "pcase"
  const char* construct;  ///< construct name as diagnostics spell it
  bool thread;
  bool os_fork;
  bool cluster;
  const char* reason;     ///< why the unsupporting backends reject it
};

[[nodiscard]] const std::vector<CapabilityRow>& capability_table();
[[nodiscard]] const CapabilityRow& capability_row(Capability cap);
[[nodiscard]] bool backend_supports(ProcessModel model, Capability cap);

/// The uniform rejection diagnostic - every rejected construct reports the
/// same fields in the same shape: construct, site, backend name, failed
/// capability id, and the table's reason.
[[nodiscard]] std::string capability_reject_message(ProcessModel model,
                                                    Capability cap,
                                                    const std::string& construct,
                                                    const std::string& site);

/// Markdown rendering of the whole matrix. docs/PORTING.md embeds this
/// between `capability-matrix` markers; test_backend_capabilities fails if
/// the embedded copy drifts from the table.
[[nodiscard]] std::string capability_matrix_markdown();

// ---------------------------------------------------------------------------
// Construct engines.
//
// Byte-oriented so one interface covers every payload type; engines are only
// created for trivially copyable payloads (the capability table rejects the
// rest before an engine is requested). A null engine from the backend means
// "no engine": the construct keeps its monomorphic thread-axis machinery.
// ---------------------------------------------------------------------------

/// Episode bounds of one selfscheduled DOALL site, as published by the
/// entry champion.
struct DoallBounds {
  std::int64_t start = 0;
  std::int64_t last = 0;
  std::int64_t incr = 1;
  std::int64_t trips = 0;
};

/// One selfscheduled DOALL site: episode entry (champion publishes bounds
/// and re-arms the dispatch counter) plus the claim loop.
class DoallSite {
 public:
  virtual ~DoallSite() = default;
  /// Arrives at the episode entry with this member's loop bounds; the
  /// elected champion publishes them. Returns the published bounds (for
  /// SPMD divergence detection by the caller).
  virtual DoallBounds enter(std::int64_t start, std::int64_t last,
                            std::int64_t incr, std::int64_t trips) = 0;
  virtual DispatchClaim claim(std::int64_t want, std::int64_t limit) = 0;
  virtual DispatchClaim claim_fraction(std::int64_t limit,
                                       std::int64_t divisor) = 0;
};

/// One Askfor monitor over fixed-stride trivially-copyable task records.
class AskforRing {
 public:
  virtual ~AskforRing() = default;
  virtual void put(const void* task) = 0;
  /// Blocks for work; copies the granted task into `out` and returns true,
  /// or returns false when the computation is over (drained or probend).
  virtual bool ask(void* out) = 0;
  virtual void complete() = 0;
  virtual void probend() = 0;
  [[nodiscard]] virtual bool ended() = 0;
  [[nodiscard]] virtual std::uint64_t granted() = 0;
  /// Re-arms the ring for force-entry generation `gen` (pooled team reuse).
  virtual void rearm(std::uint32_t gen) = 0;
};

/// One async full/empty cell over a trivially-copyable payload.
class AsyncCell {
 public:
  virtual ~AsyncCell() = default;
  virtual void produce(const void* value) = 0;
  virtual void consume(void* out) = 0;
  virtual void copy(void* out) = 0;
  virtual bool try_produce(const void* value) = 0;
  virtual bool try_consume(void* out) = 0;
  virtual void void_state() = 0;
  /// Isfull probe; rejecting backends throw the capability diagnostic.
  [[nodiscard]] virtual bool is_full() = 0;
};

/// One named reduction site (accumulate under a lock, champion snapshot at
/// the member barrier).
class ReductionSite {
 public:
  /// Folds `local` into `acc` in place.
  using Combine = std::function<void(void* acc, const void* local)>;

  virtual ~ReductionSite() = default;
  /// One member's allreduce: contributes `local`, barriers, copies the
  /// combined result into `result_out`; the champion additionally copies it
  /// into `shared_target` when non-null.
  virtual void allreduce(int me0, const void* local, void* result_out,
                         void* shared_target, const Combine& combine) = 0;
};

/// One keyed team barrier spanning the backend's address spaces.
class BarrierEngine {
 public:
  virtual ~BarrierEngine() = default;
  /// One arrival; `section` (null = none) runs in the elected champion.
  virtual void arrive(int proc0, const std::function<void()>* section) = 0;
  /// Algorithm name for barrier_name() observers ("process-shared",
  /// "cluster", ...).
  [[nodiscard]] virtual const char* name() const = 0;
};

// ---------------------------------------------------------------------------
// ExecutionBackend: the polymorphic substrate surface, selected once.
// ---------------------------------------------------------------------------

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  [[nodiscard]] virtual ProcessModel model() const = 0;
  [[nodiscard]] const char* name() const { return process_model_name(model()); }
  [[nodiscard]] bool supports(Capability cap) const {
    return backend_supports(model(), cap);
  }

  // --- construct engines (null on ThreadBackend: keep the monomorphic
  // --- thread machinery, including the lock-free dispatch fast path) ------
  [[nodiscard]] virtual std::unique_ptr<DoallSite> make_doall_site(
      const std::string& site, int width);
  [[nodiscard]] virtual std::unique_ptr<AskforRing> make_askfor_ring(
      const std::string& key, std::uint32_t capacity, std::size_t task_bytes);
  [[nodiscard]] virtual std::unique_ptr<AsyncCell> make_async_cell(
      const std::string& label, std::size_t payload_bytes,
      std::size_t payload_align);
  [[nodiscard]] virtual std::unique_ptr<ReductionSite> make_reduction_site(
      const std::string& key, int width, std::size_t payload_bytes,
      std::size_t payload_align);
  [[nodiscard]] virtual std::unique_ptr<BarrierEngine> make_team_barrier(
      int width, const std::string& key);

  // --- locks ---------------------------------------------------------------

  /// A construct lock on this substrate. `observer` (may be null) is the
  /// sentry hook; only the thread backend can honour it (the capability
  /// table forbids the sentry elsewhere, so the others ignore it).
  [[nodiscard]] virtual std::unique_ptr<BasicLock> new_lock(
      LockRole role, const std::string& label, LockObserver* observer) = 0;

  // --- team lifetime -------------------------------------------------------

  [[nodiscard]] virtual ProcessTeam process_team() const = 0;

  /// Cross-address-space run-generation word, or null when the per-process
  /// counter in the environment suffices (thread, cluster).
  [[nodiscard]] virtual std::atomic<std::uint32_t>*
  shared_run_generation_word();

  /// One force: spawns/arms the team, runs `member` for [0, nproc), joins,
  /// reports deaths. `program_type` identifies the program closure (the
  /// os-fork pool pins one program per armed team).
  virtual SpawnStats run_team(int nproc, PrivateSpace* space,
                              const std::function<void(int)>& member,
                              const std::type_info* program_type) = 0;

  /// The persistent thread team pool (ThreadBackend only; others throw).
  [[nodiscard]] virtual TeamPool& team_pool();
  /// The persistent fork team pool at width `nproc` (ShmBackend only).
  [[nodiscard]] virtual ForkTeamPool& fork_pool(int nproc);

  /// Scrubs shared synchronization state after a member death so the
  /// owning environment stays usable (ShmBackend only; others throw).
  virtual void reset_shared_sync_after_death();
};

/// Everything a backend needs from the environment, captured at selection
/// time so backends never reach back into core/.
struct BackendInit {
  MachineModel* machine = nullptr;
  SharedArena* arena = nullptr;
  bool team_pool = false;
  int pool_workers = 1;
  std::size_t member_stack_bytes = 256u << 10;
  std::string cluster_transport = "unix";
};

/// The one selection point: ForceEnvironment construction.
[[nodiscard]] std::unique_ptr<ExecutionBackend> make_execution_backend(
    ProcessModel model, const BackendInit& init);

}  // namespace force::machdep
