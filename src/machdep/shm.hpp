// Process-shared synchronization primitives for the kOsFork backend.
//
// The thread-emulated process models can lean on std::mutex and on
// std::atomic::wait, but neither survives a real fork(): std::mutex is
// undefined across address spaces and libstdc++'s atomic wait uses a
// per-process proxy table, so a waiter in one process is invisible to a
// notifier in another. Everything here works on *address-free* atomic
// words that live in a MAP_SHARED mapping, woken with raw futex syscalls
// on Linux (FUTEX_WAIT / FUTEX_WAKE without the PRIVATE flag, so the wait
// queue is keyed by physical page) and with a bounded sleep-poll fallback
// elsewhere.
//
// Liveness contract: every blocking wait in this file is *bounded* (one
// futex slice at a time) and re-checks the installed team-poison word
// between slices. When the parent reaps a dead child it poisons the team;
// survivors parked in any primitive here throw TeamPoisoned within one
// slice instead of waiting forever on a peer that no longer exists. This
// is the "never deadlocks the survivors" half of the robust-join design.
//
// All state structs are trivially destructible PODs so they can live in
// the SharedArena (which reclaims storage as raw bytes) and be addressed
// by name from every process.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "machdep/locks.hpp"

namespace force::machdep::shm {

/// One bounded wait slice; poison is re-checked at this period.
constexpr std::int64_t kWaitSliceNs = 10'000'000;  // 10 ms

// --- futex layer -----------------------------------------------------------

static_assert(sizeof(std::atomic<std::uint32_t>) == 4,
              "futex words must be exactly 32 bits");
static_assert(std::atomic<std::uint32_t>::is_always_lock_free,
              "shared-memory words must be address-free atomics");

/// Sleeps until `*word != expected` is *likely* (spurious wakeups allowed;
/// callers always re-check), for at most `timeout_ns`. Cross-process: the
/// kernel keys the wait queue by the physical page behind `word`.
void futex_wait(std::atomic<std::uint32_t>* word, std::uint32_t expected,
                std::int64_t timeout_ns = kWaitSliceNs);

/// Wakes up to `count` waiters (`count < 0` means all).
void futex_wake(std::atomic<std::uint32_t>* word, int count);

// --- team poison -----------------------------------------------------------

/// Thrown out of any shm wait when the team has been poisoned (a sibling
/// process died). Forked children translate it into a quiet collateral
/// exit; the parent reports only the primary death.
class TeamPoisoned : public std::runtime_error {
 public:
  TeamPoisoned() : std::runtime_error(
      "force team poisoned: a sibling process died") {}
};

/// Installs the team-wide poison word (in the control mapping) for the
/// duration of a fork run; `nullptr` uninstalls. Not thread-safe against
/// concurrent runs - one fork team per process at a time, which is the
/// Force's one-driver model anyway.
void set_team_poison(std::atomic<std::uint32_t>* word);
[[nodiscard]] std::atomic<std::uint32_t>* team_poison();

/// True when a poison word is installed and set.
[[nodiscard]] bool team_poisoned();

/// Throws TeamPoisoned when the team is poisoned; called between wait
/// slices by every primitive below.
void check_poison();

// --- last-known construct site ---------------------------------------------

/// Installs the calling process's site slot (a char buffer inside the
/// team control mapping). Blocking primitives record the label of the
/// construct they are waiting at, so the parent can name the last-known
/// construct site of a process that died.
void set_site_slot(char* slot, std::size_t capacity);

/// Records `label` in the installed slot (no-op when none is installed).
void note_site(const char* label);

// --- shared anonymous mappings ---------------------------------------------

/// RAII over one mmap(MAP_SHARED | MAP_ANONYMOUS) region. Created before
/// fork(); parent and children then address the same pages at the same
/// virtual address. Unmapped by whichever processes destroy it; the pages
/// themselves live until the last mapping goes.
class SharedMapping {
 public:
  explicit SharedMapping(std::size_t bytes);
  ~SharedMapping();

  SharedMapping(const SharedMapping&) = delete;
  SharedMapping& operator=(const SharedMapping&) = delete;

  [[nodiscard]] void* data() { return data_; }
  [[nodiscard]] const void* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return bytes_; }

 private:
  void* data_ = nullptr;
  std::size_t bytes_ = 0;
};

// --- process-shared lock ---------------------------------------------------

/// The futex word of one process-shared binary semaphore.
/// 0 = free, 1 = held (no waiters advertised), 2 = held + waiters.
struct ShmLockState {
  std::atomic<std::uint32_t> word{0};
};

void shm_lock_acquire(ShmLockState& s);
bool shm_lock_try_acquire(ShmLockState& s);
void shm_lock_release(ShmLockState& s);

/// BasicLock façade over an arena-resident ShmLockState, so the generic
/// lock engine (critical sections, named locks, monitors) works across
/// address spaces without the constructs changing. The wrapper object is
/// per-process; only the state word is shared. Cross-process release is
/// legal, as the Force lock contract requires.
class ShmLock final : public BasicLock {
 public:
  ShmLock(ShmLockState* state, std::string label)
      : state_(state), label_(std::move(label)) {}

  void acquire() override {
    note_site(label_.c_str());
    shm_lock_acquire(*state_);
  }
  bool try_acquire() override { return shm_lock_try_acquire(*state_); }
  void release() override { shm_lock_release(*state_); }
  const char* mechanism() const override { return "futex-shared"; }

  [[nodiscard]] const std::string& label() const { return label_; }

 private:
  ShmLockState* state_;
  std::string label_;
};

// --- process-shared barrier ------------------------------------------------

/// Episode barrier: no per-process sense needed (the episode word IS the
/// sense), so the state is two shared words and works for any process
/// that can read them. The width-th arriver is the champion: it runs the
/// barrier section while everyone else is parked on the episode word,
/// resets the count, then publishes episode+1 and wakes all.
struct alignas(64) ShmBarrierState {
  std::atomic<std::uint32_t> count{0};
  std::atomic<std::uint32_t> episode{0};
};

/// One arrival. `section` (may be empty) runs in the champion while the
/// other width-1 processes are suspended. `label` (may be null) is noted
/// as the last-known construct site before parking.
void shm_barrier_arrive(ShmBarrierState& b, std::uint32_t width,
                        const std::function<void()>& section,
                        const char* label);

// --- process-shared full/empty cell ----------------------------------------

/// Full/empty state word of one async variable: 0 = empty, 1 = full,
/// 2 = busy (a producer or consumer owns the payload window). The payload
/// itself lies immediately after the state in the arena blob; all
/// transfers are memcpy of trivially copyable bytes.
struct alignas(64) ShmCellState {
  std::atomic<std::uint32_t> state{0};
};

void shm_cell_produce(ShmCellState& c, void* payload, const void* src,
                      std::size_t n, const char* label);
void shm_cell_consume(ShmCellState& c, const void* payload, void* dst,
                      std::size_t n, const char* label);
void shm_cell_copy(ShmCellState& c, const void* payload, void* dst,
                   std::size_t n, const char* label);
bool shm_cell_try_produce(ShmCellState& c, void* payload, const void* src,
                          std::size_t n);
bool shm_cell_try_consume(ShmCellState& c, const void* payload, void* dst,
                          std::size_t n);
void shm_cell_void(ShmCellState& c);
[[nodiscard]] bool shm_cell_is_full(const ShmCellState& c);

// --- process-shared dispatch counter ---------------------------------------

/// The lock-free dispatch engine's counter, address-free so it works on
/// shared pages: plain fetch-add / CAS, no waiting involved. Mirrors
/// DispatchCounter's clamp-at-limit semantics exactly (see locks.cpp).
struct alignas(64) ShmDispatchState {
  std::atomic<std::int64_t> value{0};
};

DispatchClaim shm_dispatch_claim(ShmDispatchState& d, std::int64_t want,
                                 std::int64_t limit);
DispatchClaim shm_dispatch_claim_fraction(ShmDispatchState& d,
                                          std::int64_t limit,
                                          std::int64_t divisor);

// --- selfscheduled-loop episode state --------------------------------------

/// Shared state of one selfscheduled DOALL site under kOsFork: an entry
/// barrier whose champion publishes the bounds and re-arms the dispatch,
/// then a claim loop on the shared counter. Faithful to the paper there
/// is NO exit barrier; reuse is still safe because the next episode's
/// entry barrier cannot complete until every process has arrived, and a
/// process only arrives after leaving the previous claim loop.
struct ShmSelfschedState {
  ShmBarrierState entry;
  ShmDispatchState dispatch;
  // Episode bounds: written only by the entry champion, inside the
  // barrier section, published by the episode release.
  std::int64_t start = 0;
  std::int64_t last = 0;
  std::int64_t incr = 1;
  std::int64_t trips = 0;
};

// --- process-shared reduction header ----------------------------------------

/// Fixed head of an os-fork reduction blob ("%reduce/<key>" in the arena,
/// core/reduce.hpp): the payload-typed accumulator and result follow in
/// the same allocation, but death recovery only needs to scrub these
/// protocol words, so they are split out as an untemplated POD.
struct ShmReduceHeader {
  ShmLockState lock;
  ShmBarrierState barrier;
  std::uint32_t arrived = 0;  ///< guarded by lock
};

// --- process-shared askfor monitor -----------------------------------------

/// The Askfor monitor over shared memory: a fixed-capacity FIFO ring of
/// fixed-stride task records behind one ShmLock, with a version word for
/// sleeping. head/tail are monotonic (index = value % capacity). Tasks
/// are trivially-copyable bytes; a granted task is copied OUT of the ring
/// (cross-process pointers into a growing queue cannot work), which is
/// the one semantic difference from the thread engines' stable-storage
/// references.
struct ShmAskforState {
  ShmLockState monitor;
  std::atomic<std::uint32_t> version{0};  ///< bumped on put/complete/probend
  std::atomic<std::uint64_t> granted{0};
  std::uint32_t capacity = 0;
  std::uint32_t stride = 0;
  std::uint32_t head = 0;     ///< guarded by monitor
  std::uint32_t tail = 0;     ///< guarded by monitor
  std::int32_t working = 0;   ///< guarded by monitor
  /// End latch, guarded by the monitor: 0 open, kShmAskforDrained when the
  /// termination check found no work and nobody working, kShmAskforProbend
  /// after an explicit probend(). The distinction matters for seeding: a
  /// drain is provisional (a put() racing behind it re-opens the monitor,
  /// so a seed is never silently lost), a probend is final for the entry.
  std::uint32_t ended = 0;
  /// Force-entry generation this ring was last (re-)armed for. A pooled
  /// team re-enters the same force repeatedly over the same arena, so the
  /// drained/probend latch must reset per entry - the first operation of a
  /// new generation clears the episode state. Atomic so the common "same
  /// generation" probe stays outside the monitor.
  std::atomic<std::uint32_t> seen_gen{0};
  // capacity * stride task bytes follow this header in the arena blob.
};

/// ShmAskforState::ended values beyond 0 (open).
inline constexpr std::uint32_t kShmAskforDrained = 1;
inline constexpr std::uint32_t kShmAskforProbend = 2;

/// Bytes of the whole blob (header + ring storage).
[[nodiscard]] std::size_t shm_askfor_bytes(std::uint32_t capacity,
                                           std::uint32_t stride);

/// Initializes a raw blob (called once under the arena's construct-once
/// protocol).
void shm_askfor_init(void* blob, std::uint32_t capacity,
                     std::uint32_t stride);

/// Re-arms the ring for force-entry generation `gen` (pooled team reuse):
/// resets the drained/probend latch, the ring indexes and the working
/// count. A no-op when the ring has already seen `gen`. Must only be
/// called at episode boundaries (no worker inside ask/complete).
void shm_askfor_rearm(ShmAskforState& a, std::uint32_t gen);

void shm_askfor_put(ShmAskforState& a, const void* task);
/// Blocks for work; copies the granted task into `out` and returns true,
/// or returns false when the computation is over (drained or probend).
bool shm_askfor_ask(ShmAskforState& a, void* out, const char* label);
void shm_askfor_complete(ShmAskforState& a);
void shm_askfor_probend(ShmAskforState& a);
[[nodiscard]] bool shm_askfor_ended(const ShmAskforState& a);

}  // namespace force::machdep::shm
