// Persistent team pools: force spawn without the per-entry spawn tax.
//
// Every Force::run normally creates its team (jthreads or fork(2)
// children) and joins it at the end - the paper's driver model, and the
// cost bench E7 measures. A pool keeps the team alive across runs and
// replaces create/join with a generation-stamped entry protocol:
//
//   * TeamPool (thread axis): W worker threads park between forces on a
//     low-latency wait (bounded spin, then a futex-style atomic wait on
//     the arm generation). run() publishes the job, bumps the generation,
//     executes member 0 ITSELF - the driver is a member, as in the
//     paper's driver model - and then waits for the done generation to
//     catch up. Running the leader inline saves one worker wake (and its
//     context switch) per entry and overlaps the leader's work with the
//     workers' wakeup; a 1:1 team therefore needs only NP-1 workers.
//     Worker w owns members {w+1, w+1+W, ...}; when the force is wider
//     than the pool (NP-1 > W) each worker multiplexes its members as
//     run-to-barrier continuations (machdep/fiber).
//
//   * ForkTeamPool (process axis): fork(2) children stay resident over
//     the MAP_SHARED arena and park on a futex'd arm generation in a
//     control mapping. The parent re-arms them per force and reuses the
//     os-fork backend's waitpid death machinery: a dead pool child
//     poisons the team, surfaces once as ProcessDeathError, and the next
//     run() transparently re-forks a fresh team.
//
// Both pools preserve ProcessTeam::run's contract: the first member
// exception is rethrown after the whole team has quiesced, and a pool is
// reusable after an error.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "machdep/process.hpp"

namespace force::machdep {

class MemberScheduler;  // machdep/fiber.hpp

namespace shm {
class SharedMapping;  // machdep/shm.hpp
}

/// Persistent thread-axis team: W workers executing forces of any width.
class TeamPool {
 public:
  /// Spawns `workers` threads immediately; they park until the first run.
  explicit TeamPool(int workers, std::size_t member_stack_bytes = 256u << 10);
  ~TeamPool();

  TeamPool(const TeamPool&) = delete;
  TeamPool& operator=(const TeamPool&) = delete;

  [[nodiscard]] int workers() const { return workers_; }

  /// One force: entry(m) runs for every member m in [0, nproc). The
  /// calling (driver) thread executes member 0 inline; with
  /// nproc - 1 <= workers every other member owns a worker (1:1),
  /// otherwise members are multiplexed N:M as continuations. Blocks until
  /// all members finished; rethrows the first member exception.
  SpawnStats run(int nproc, const std::function<void(int)>& entry);

 private:
  struct Job {
    const std::function<void(int)>* entry = nullptr;
    int nproc = 0;
  };

  void worker_main(int w);
  // sched is the worker's long-lived member scheduler: it recycles fiber
  // stacks across forces, so N:M re-entry does not re-allocate them.
  void run_members(int w, const Job& job, MemberScheduler& sched);

  int workers_;
  std::size_t member_stack_bytes_;
  Job job_;  // published by the arm_ generation store
  // 32-bit on purpose: futex-sized atomics wait on the word itself
  // (libstdc++ __platform_wait), wider ones go through a proxy wait table
  // with an extra global hash - measurably slower to park and wake. All
  // generation comparisons are != so the 2^32 wrap is harmless.
  std::atomic<std::uint32_t> arm_{0};
  std::atomic<std::uint32_t> done_{0};
  std::atomic<int> remaining_{0};
  std::atomic<bool> shutdown_{false};
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
  std::vector<std::jthread> threads_;
};

/// Persistent process-axis team: resident fork(2) children re-armed per
/// force over the shared-memory control words.
class ForkTeamPool {
 public:
  explicit ForkTeamPool(int nproc);
  ~ForkTeamPool();

  ForkTeamPool(const ForkTeamPool&) = delete;
  ForkTeamPool& operator=(const ForkTeamPool&) = delete;

  [[nodiscard]] int nproc() const { return nproc_; }
  /// True while a resident team exists (it is forked lazily on the first
  /// run and re-forked by the run after a death).
  [[nodiscard]] bool armed() const { return alive_; }

  /// One force. The FIRST run forks the children, which then hold their
  /// fork-point stacks forever: later runs re-execute the closure the pool
  /// was armed with, so every run must pass the same program (enforced by
  /// Force::run via the closure's type). After a ProcessDeathError the
  /// next run re-forks with its own entry.
  SpawnStats run(PrivateSpace* space, const std::function<void(int)>& entry);

  /// Retires the team: children unpark, _Exit(0) and are reaped. Idempotent.
  void shutdown();

 private:
  struct PoolControl;
  struct PoolSlot;

  void spawn(const std::function<void(int)>& entry);
  void teardown_after_death();

  int nproc_;
  std::uint32_t generation_ = 0;
  bool alive_ = false;
  std::unique_ptr<shm::SharedMapping> control_;
  PoolControl* ctl_ = nullptr;
  PoolSlot* slots_ = nullptr;
  std::vector<long> pids_;
};

}  // namespace force::machdep
