#include "machdep/machine.hpp"

#include <thread>

#include "util/check.hpp"

namespace force::machdep {

namespace {

/// A logical binary semaphore multiplexed over one shared physical lock.
/// The logical state (`held_`) is guarded by the physical lock; waiting is
/// poll-with-yield, so many logical locks contend on few physical ones -
/// semantically correct, measurably slower, exactly the paper's scarcity
/// trade-off.
class StripedLock final : public BasicLock {
 public:
  explicit StripedLock(std::shared_ptr<BasicLock> physical)
      : physical_(std::move(physical)) {}

  void acquire() override {
    for (;;) {
      physical_->acquire();
      if (!held_) {
        held_ = true;
        physical_->release();
        return;
      }
      physical_->release();
      std::this_thread::yield();
    }
  }

  bool try_acquire() override {
    physical_->acquire();
    const bool ok = !held_;
    if (ok) held_ = true;
    physical_->release();
    return ok;
  }

  void release() override {
    physical_->acquire();
    held_ = false;
    physical_->release();
  }

  const char* mechanism() const override { return "striped"; }

 private:
  std::shared_ptr<BasicLock> physical_;
  bool held_ = false;  // guarded by *physical_
};

std::vector<MachineSpec> build_registry() {
  std::vector<MachineSpec> specs;

  {
    MachineSpec m;
    m.name = "hep";
    m.description =
        "Denelcor HEP: hardware full/empty bit on every memory cell; "
        "processes created by subroutine call";
    m.lock_kind = LockKind::kHepFullEmpty;
    m.sharing = SharingStrategy::kCompileTime;
    m.process_model = ProcessModelKind::kHepCreate;
    m.hardware_full_empty = true;
    m.lock_budget = -1;  // every cell is a lock
    m.costs.lock_uncontended_ns = 100;
    m.costs.lock_contended_extra_ns = 100;
    m.costs.spin_probe_ns = 0;  // hardware retry queue, no bus traffic
    m.costs.blocking_wait_ns = 200;
    m.costs.barrier_episode_ns = 800;
    m.costs.process_create_ns = 2000;  // a subroutine call
    m.costs.copy_byte_ns = 0.0;
    m.costs.produce_consume_ns = 100;  // one tagged memory access
    m.costs.work_scale = 8.0;  // slow scalar streams
    specs.push_back(m);
  }
  {
    MachineSpec m;
    m.name = "flex32";
    m.description =
        "Flexible Flex/32: combined spin-then-system-call locks; Unix "
        "fork/join processes; compile-time COMMON sharing";
    m.lock_kind = LockKind::kCombined;
    m.sharing = SharingStrategy::kCompileTime;
    m.process_model = ProcessModelKind::kForkJoinCopy;
    m.lock_budget = 1024;
    m.costs.lock_uncontended_ns = 1200;
    m.costs.lock_contended_extra_ns = 2500;
    m.costs.spin_probe_ns = 120;
    m.costs.blocking_wait_ns = 60000;
    m.costs.barrier_episode_ns = 9000;
    m.costs.process_create_ns = 2500000;
    m.costs.copy_byte_ns = 0.8;
    m.costs.produce_consume_ns = 3000;  // two lock passes
    m.costs.work_scale = 5.0;
    specs.push_back(m);
  }
  {
    MachineSpec m;
    m.name = "encore";
    m.description =
        "Encore Multimax: test&set spin locks; run-time shared pages "
        "padded front and back; Unix fork/join processes";
    m.lock_kind = LockKind::kTasSpin;
    m.sharing = SharingStrategy::kRuntimePadded;
    m.process_model = ProcessModelKind::kForkJoinCopy;
    m.lock_budget = 4096;
    m.costs.lock_uncontended_ns = 900;
    m.costs.lock_contended_extra_ns = 1800;
    m.costs.spin_probe_ns = 150;  // every TAS probe hits the bus
    m.costs.blocking_wait_ns = 80000;
    m.costs.barrier_episode_ns = 7000;
    m.costs.process_create_ns = 1800000;
    m.costs.copy_byte_ns = 0.6;
    m.costs.produce_consume_ns = 2400;
    m.costs.work_scale = 6.0;  // NS32032-class CPUs
    specs.push_back(m);
  }
  {
    MachineSpec m;
    m.name = "sequent";
    m.description =
        "Sequent Balance: test&set spin locks; link-time sharing via the "
        "two-run startup protocol; Unix fork/join processes";
    m.lock_kind = LockKind::kTasSpin;
    m.sharing = SharingStrategy::kLinkTime;
    m.process_model = ProcessModelKind::kForkJoinCopy;
    m.lock_budget = 4096;
    m.costs.lock_uncontended_ns = 1000;
    m.costs.lock_contended_extra_ns = 2000;
    m.costs.spin_probe_ns = 140;
    m.costs.blocking_wait_ns = 90000;
    m.costs.barrier_episode_ns = 7500;
    m.costs.process_create_ns = 2200000;
    m.costs.copy_byte_ns = 0.7;
    m.costs.produce_consume_ns = 2600;
    m.costs.work_scale = 7.0;  // NS32016-class CPUs
    specs.push_back(m);
  }
  {
    MachineSpec m;
    m.name = "alliant";
    m.description =
        "Alliant FX/8: test-and-test&set locks; sharing starts on a page "
        "boundary; fork variant sharing data, copying only the stack";
    m.lock_kind = LockKind::kTtasSpin;
    m.sharing = SharingStrategy::kPageAlignedStart;
    m.process_model = ProcessModelKind::kForkSharedData;
    // The FX/8 CEs have interlocked memory ops (the concurrency bus);
    // test&set implies the RMW needed for fetch-add style dispatch.
    m.hardware_atomic_rmw = true;
    m.lock_budget = 2048;
    m.costs.lock_uncontended_ns = 600;
    m.costs.lock_contended_extra_ns = 1200;
    m.costs.spin_probe_ns = 60;  // TTAS probes stay in cache
    m.costs.blocking_wait_ns = 50000;
    m.costs.barrier_episode_ns = 5000;
    m.costs.process_create_ns = 400000;  // only the stack is copied
    m.costs.copy_byte_ns = 0.5;
    m.costs.produce_consume_ns = 1500;
    m.costs.work_scale = 1.8;  // vector CEs
    specs.push_back(m);
  }
  {
    MachineSpec m;
    m.name = "cray2";
    m.description =
        "Cray-2: system-call locks (OS keeps the queue of locked "
        "processes); very fast CPUs; scarce hardware locks";
    m.lock_kind = LockKind::kSystem;
    m.sharing = SharingStrategy::kCompileTime;
    m.process_model = ProcessModelKind::kForkJoinCopy;
    // Scarce *locks*, but the CPU has atomic semaphore/RMW instructions:
    // dispatch counters must not burn the 32-lock budget on loop indices.
    m.hardware_atomic_rmw = true;
    m.lock_budget = 32;  // the scarce-resource machine
    m.costs.lock_uncontended_ns = 15000;  // a system call each way
    m.costs.lock_contended_extra_ns = 10000;
    m.costs.spin_probe_ns = 0;
    m.costs.blocking_wait_ns = 30000;
    m.costs.barrier_episode_ns = 40000;
    m.costs.process_create_ns = 3000000;
    m.costs.copy_byte_ns = 0.1;
    m.costs.produce_consume_ns = 32000;  // two system-call lock passes
    m.costs.work_scale = 0.25;  // fastest machine of its day
    specs.push_back(m);
  }
  {
    MachineSpec m;
    m.name = "native";
    m.description =
        "Modern default: ticket locks, run-time sharing, std::jthread";
    m.lock_kind = LockKind::kTicket;
    m.sharing = SharingStrategy::kRuntimePadded;
    m.process_model = ProcessModelKind::kHepCreate;
    m.hardware_atomic_rmw = true;  // std::atomic RMW is native here
    m.lock_budget = -1;
    m.costs.lock_uncontended_ns = 40;
    m.costs.lock_contended_extra_ns = 120;
    m.costs.spin_probe_ns = 5;
    m.costs.blocking_wait_ns = 4000;
    m.costs.barrier_episode_ns = 300;
    m.costs.process_create_ns = 30000;
    m.costs.copy_byte_ns = 0.05;
    m.costs.produce_consume_ns = 120;
    m.costs.work_scale = 1.0;
    specs.push_back(m);
  }
  return specs;
}

const std::vector<MachineSpec>& registry() {
  static const std::vector<MachineSpec> specs = build_registry();
  return specs;
}

}  // namespace

std::vector<std::string> machine_names() {
  std::vector<std::string> names;
  for (const auto& m : registry()) names.push_back(m.name);
  return names;
}

const MachineSpec& machine_spec(const std::string& name) {
  for (const auto& m : registry()) {
    if (m.name == name) return m;
  }
  std::string known;
  for (const auto& m : registry()) known += " " + m.name;
  FORCE_CHECK(false, "unknown machine '" + name + "'; known:" + known);
}

MachineModel::MachineModel(MachineSpec spec) : spec_(std::move(spec)) {}

std::unique_ptr<BasicLock> MachineModel::new_lock() {
  std::lock_guard<std::mutex> g(alloc_mutex_);
  ++stats_.logical_locks;
  const bool unlimited = spec_.lock_budget < 0;
  if (unlimited ||
      stats_.physical_locks <
          static_cast<std::uint64_t>(spec_.lock_budget)) {
    ++stats_.physical_locks;
    return make_lock(spec_.lock_kind, &counters_, spec_.spin_policy);
  }
  // Budget exhausted: multiplex over a small pool carved out of the budget.
  if (stripe_pool_.empty()) {
    const std::size_t pool =
        std::max<std::size_t>(1, static_cast<std::size_t>(spec_.lock_budget) / 8);
    for (std::size_t i = 0; i < pool; ++i) {
      stripe_pool_.push_back(std::shared_ptr<BasicLock>(
          make_lock(spec_.lock_kind, &counters_, spec_.spin_policy)));
    }
  }
  ++stats_.striped_locks;
  auto physical = stripe_pool_[next_stripe_];
  next_stripe_ = (next_stripe_ + 1) % stripe_pool_.size();
  return std::make_unique<StripedLock>(std::move(physical));
}

std::unique_ptr<DispatchCounter> MachineModel::new_dispatch_counter(
    bool force_locked) {
  if (spec_.hardware_atomic_rmw && !force_locked) {
    return std::make_unique<DispatchCounter>();
  }
  return std::make_unique<DispatchCounter>(new_lock());
}

LockAllocationStats MachineModel::lock_stats() const {
  std::lock_guard<std::mutex> g(alloc_mutex_);
  return stats_;
}

}  // namespace force::machdep
