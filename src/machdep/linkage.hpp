// The startup-routine linkage protocol (paper §4.1.2, Sequent/Encore).
//
// On the Sequent, variables are shared at *link* time: the preprocessor
// plants a startup subroutine in the main Force program and in every Force
// subroutine; each startup routine reports the shared variables its module
// declares, and the main program's startup routine calls every module's.
// The program is then run twice - the first run only executes the startup
// routines and emits linker commands; the second run is the real program.
// On the Encore the same startup structure runs once because sharing is
// established at run time.
//
// LinkageRegistry models this: modules register a startup function that
// declares their shared names into the arena; run_startup() executes all of
// them (the "first run") and optionally link()s the arena (the "second
// run" precondition on the Sequent).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "machdep/arena.hpp"

namespace force::machdep {

class LinkageRegistry {
 public:
  using StartupFn = std::function<void(SharedArena&)>;

  /// Registers a module's startup routine (Force main or Forcesub).
  /// Duplicate module names are an error - two COMMON blocks of the same
  /// name with different shapes would not link.
  void register_module(const std::string& module_name, StartupFn startup);

  [[nodiscard]] bool has_module(const std::string& module_name) const;
  [[nodiscard]] std::vector<std::string> module_names() const;
  [[nodiscard]] std::size_t size() const { return modules_.size(); }

  /// Executes every startup routine against `arena` in registration order
  /// (the main program's startup calling each subroutine's, in the paper),
  /// then link()s the arena if its strategy requires it. Returns the
  /// number of startup routines run.
  std::size_t run_startup(SharedArena& arena) const;

  void clear() { modules_.clear(); }

 private:
  struct Module {
    std::string name;
    StartupFn startup;
  };
  std::vector<Module> modules_;
};

}  // namespace force::machdep
