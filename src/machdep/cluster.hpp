// Cluster process model: force members as separate processes with no shared
// mapping at all, cooperating through a coordinator over the framed socket
// transport in machdep/net.hpp.
//
// Topology. The parent process is a pure coordinator - it never runs member
// code. It forks nproc peers, each holding one stream connection back to the
// coordinator (Unix-domain socketpair by default, loopback TCP with
// cluster_transport="tcp"). Every synchronization construct - barrier, lock,
// dispatch counter, askfor monitor, async variable - is a keyed state table
// on the coordinator driven by request/response frames. The protocol is
// strictly request -> response: a peer that is waiting is always parked in
// recv, so coordinator replies can never deadlock; the only unsolicited
// coordinator frame is kPoison (team death).
//
// Software distributed shared arena. Each peer's arena is a private
// copy-on-write image of the parent's; a shadow copy tracks what the
// coordinator has last been told. At every RELEASE point (barrier arrival,
// lock release, askfor put/complete, async produce, join) the peer byte-diffs
// arena against shadow and ships the changed runs; the coordinator appends
// them to a global monotone update log and applies them to the master arena.
// At every ACQUIRE point (lock grant, barrier release, askfor grant, async
// value) the reply carries the log suffix the peer has not yet seen, which
// the peer applies to both arena and shadow. Under the Force's data-race-free
// discipline (shared writes happen under locks, barriers order phases) this
// write-through/log-replay scheme makes release-point arena contents
// deterministic - the fuzz tests in tests/test_cluster_proto.cpp drive the
// pure diff/apply half directly.
//
// Death. Identical in shape to the os-fork backend: the coordinator reaps
// with waitpid(WNOHANG); the first abnormal exit poisons the team (kPoison
// to every live peer, SIGKILL stragglers after a grace period) and surfaces
// as ProcessDeathError with pid/signal/exit-code/site provenance. EOF on a
// live peer's connection is a torn link: the peer is killed and reported.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "machdep/locks.hpp"
#include "machdep/net.hpp"
#include "machdep/process.hpp"

namespace force::machdep {
class SharedArena;
}

namespace force::machdep::cluster {

// ---------------------------------------------------------------------------
// Distributed-shared-arena building blocks (pure; fuzz-tested directly).
// ---------------------------------------------------------------------------
namespace dsm {

/// One contiguous run of changed bytes at an arena offset.
struct Record {
  std::uint64_t offset = 0;
  std::vector<unsigned char> bytes;
};

/// Byte-diffs data[0, n) against `shadow`, appending one Record per changed
/// run and updating shadow to match. The shadow is zero-extended first, so
/// freshly allocated arena space is shipped once in full.
std::vector<Record> diff(const unsigned char* data, std::size_t n,
                         std::vector<unsigned char>* shadow);

/// Applies records in order to a flat byte image, zero-extending as needed
/// (bounded by `capacity`). This is the coordinator's master-arena apply.
void apply(std::vector<unsigned char>* image, const std::vector<Record>& recs,
           std::size_t capacity);

void encode_records(net::Writer* w, const std::vector<Record>& recs);
/// Returns false (without UB) on malformed input.
bool decode_records(net::Reader* r, std::vector<Record>* out);

}  // namespace dsm

// ---------------------------------------------------------------------------
// Runtime configuration (installed by the environment before a cluster run).
// ---------------------------------------------------------------------------

struct RuntimeConfig {
  SharedArena* arena = nullptr;      // null: no DSM (bare spawn benches)
  std::string transport = "unix";    // "unix" | "tcp"
};

/// Installs the config ProcessTeam::run(kCluster) will use. Scoped so a
/// finished run cannot leak a dangling arena pointer into the next one.
class ScopedRuntimeConfig {
 public:
  explicit ScopedRuntimeConfig(RuntimeConfig cfg);
  ~ScopedRuntimeConfig();
  ScopedRuntimeConfig(const ScopedRuntimeConfig&) = delete;
  ScopedRuntimeConfig& operator=(const ScopedRuntimeConfig&) = delete;
};

[[nodiscard]] const RuntimeConfig& runtime_config();

// ---------------------------------------------------------------------------
// Peer-side client: one per member process, installed globally after fork.
// ---------------------------------------------------------------------------

struct Claim {
  std::int64_t begin = 0;
  std::int64_t count = 0;
};

class ClusterClient {
 public:
  ClusterClient(net::Conn conn, int proc0, SharedArena* arena);

  [[nodiscard]] int proc0() const { return proc0_; }

  /// Updates the coordinator's last-known-construct-site for this peer
  /// (sent only when it changes; feeds ProcessDeathError provenance).
  void note_site(const std::string& site);

  /// Ships dirty arena bytes to the coordinator (a RELEASE point).
  void flush();

  /// Barrier arrival: flush, arrive, run `section` if elected champion,
  /// block until the whole episode releases (applying updates).
  void barrier_arrive(const std::string& key, int width,
                      const std::function<void()>* section);

  void lock_acquire(const std::string& key);
  bool lock_try_acquire(const std::string& key);
  void lock_release(const std::string& key);

  void dispatch_reset(const std::string& key);
  Claim dispatch_claim(const std::string& key, std::int64_t want,
                       std::int64_t limit);
  Claim dispatch_claim_fraction(const std::string& key, std::int64_t limit,
                                std::int64_t divisor);

  void askfor_put(const std::string& key, const void* task, std::size_t n);
  /// Blocks for a task (or end-of-work). Returns true and fills `task`
  /// when granted; false when the pool has drained or probend was called.
  bool askfor_ask(const std::string& key, void* task, std::size_t n);
  void askfor_complete(const std::string& key);
  void askfor_probend(const std::string& key);
  void askfor_status(const std::string& key, bool* ended,
                     std::uint64_t* granted);

  void cell_produce(const std::string& key, const void* value, std::size_t n);
  void cell_consume(const std::string& key, void* value, std::size_t n);
  void cell_copy(const std::string& key, void* value, std::size_t n);
  bool cell_try_produce(const std::string& key, const void* value,
                        std::size_t n);
  bool cell_try_consume(const std::string& key, void* value, std::size_t n);
  void cell_void(const std::string& key);

  /// Final flush + orderly goodbye; the member exits cleanly after this.
  void join();

  /// Best-effort: ships an exception message for death provenance.
  void report_error(const std::string& what) noexcept;

  /// Fault-injection hook: half-closes the socket so the coordinator sees
  /// EOF while this process is still alive.
  void sever_connection_for_test();

 private:
  void handshake();
  Claim claim_rpc(const std::string& key, std::int64_t want,
                  std::int64_t limit, std::int64_t divisor);
  void apply_updates(net::Reader* r);
  void drain_pending();
  void apply_record(std::uint64_t offset, const unsigned char* data,
                    std::size_t n);
  /// Blocks for a frame of one of the `allowed` types; kPoison anywhere
  /// throws shm::TeamPoisoned so the member unwinds and exits 103.
  net::MsgType recv_expect(std::initializer_list<net::MsgType> allowed,
                           std::vector<unsigned char>* payload);

  net::Conn conn_;
  int proc0_;
  SharedArena* arena_;
  std::vector<unsigned char> shadow_;
  std::vector<dsm::Record> pending_;  // records ahead of local allocation
  std::string last_site_;
};

/// The member process's client (null outside a cluster member).
[[nodiscard]] ClusterClient* client();
/// As above but FORCE_CHECKs that a client is installed.
[[nodiscard]] ClusterClient& require_client();

/// Half-closes the calling member's coordinator link (torn-connection
/// fault injection). No-op outside a cluster member.
void sever_connection_for_test();

/// BasicLock over coordinator RPCs: one keyed lock cell per label. Like
/// ShmLock, labels are construct-unique, so every member that reaches the
/// same construct contends on the same coordinator-side cell. The lock is
/// constructed freely in any process (including the coordinator, where
/// lock objects exist but are never acquired); the client is looked up at
/// acquire time.
class ClusterLock final : public BasicLock {
 public:
  explicit ClusterLock(std::string label) : label_(std::move(label)) {}

  void acquire() override {
    ClusterClient& c = require_client();
    c.note_site(label_);
    c.lock_acquire(label_);
  }
  bool try_acquire() override {
    return require_client().lock_try_acquire(label_);
  }
  void release() override { require_client().lock_release(label_); }
  const char* mechanism() const override { return "cluster-rpc"; }

  [[nodiscard]] const std::string& label() const { return label_; }

 private:
  std::string label_;
};

// ---------------------------------------------------------------------------
// Team entry: fork peers, serve the coordinator loop, reap, report.
// ---------------------------------------------------------------------------

SpawnStats run_cluster_team(int nproc, PrivateSpace* space,
                            const std::function<void(int)>& entry);

}  // namespace force::machdep::cluster
