#include "machdep/costmodel.hpp"

#include <algorithm>
#include <queue>

#include "util/check.hpp"

namespace force::machdep {

double CostModel::lock_time_ns(const LockCountersSnapshot& d) const {
  return static_cast<double>(d.acquires) * p_.lock_uncontended_ns +
         static_cast<double>(d.contended_acquires) *
             p_.lock_contended_extra_ns +
         static_cast<double>(d.spin_iterations) * p_.spin_probe_ns +
         static_cast<double>(d.blocking_waits) * p_.blocking_wait_ns;
}

double CostModel::creation_time_ns(int nproc,
                                   std::size_t bytes_copied) const {
  return static_cast<double>(nproc) * p_.process_create_ns +
         static_cast<double>(bytes_copied) * p_.copy_byte_ns;
}

double CostModel::work_time_ns(double nominal_ns) const {
  return nominal_ns * p_.work_scale;
}

double CostModel::produce_consume_time_ns(std::uint64_t ops) const {
  return static_cast<double>(ops) * p_.produce_consume_ns;
}

double CostModel::presched_makespan_ns(
    const std::vector<double>& iter_work_ns, int nproc) const {
  FORCE_CHECK(nproc > 0, "need at least one process");
  std::vector<double> per_proc(static_cast<std::size_t>(nproc), 0.0);
  for (std::size_t i = 0; i < iter_work_ns.size(); ++i) {
    per_proc[i % static_cast<std::size_t>(nproc)] +=
        work_time_ns(iter_work_ns[i]);
  }
  const double slowest =
      per_proc.empty() ? 0.0
                       : *std::max_element(per_proc.begin(), per_proc.end());
  return slowest + p_.barrier_episode_ns;
}

double CostModel::selfsched_makespan_ns(
    const std::vector<double>& iter_work_ns, int nproc,
    double dispatch_ns) const {
  return chunked_makespan_ns(iter_work_ns, nproc, dispatch_ns, 1);
}

double CostModel::chunked_makespan_ns(const std::vector<double>& iter_work_ns,
                                      int nproc, double dispatch_ns,
                                      std::size_t chunk) const {
  FORCE_CHECK(nproc > 0, "need at least one process");
  FORCE_CHECK(chunk > 0, "chunk must be positive");
  // Greedy simulation: the earliest-free process claims the next chunk.
  // The dispatch critical section is serialized through `counter_free`,
  // modelling the shared loop index's lock.
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (int p = 0; p < nproc; ++p) free_at.push(0.0);
  double counter_free = 0.0;
  std::size_t next = 0;
  double makespan = 0.0;
  while (next < iter_work_ns.size()) {
    double t = free_at.top();
    free_at.pop();
    // Wait for the loop-index critical section if it is busy.
    const double dispatch_start = std::max(t, counter_free);
    const double dispatch_end = dispatch_start + dispatch_ns;
    counter_free = dispatch_end;
    double work = 0.0;
    for (std::size_t k = 0; k < chunk && next < iter_work_ns.size();
         ++k, ++next) {
      work += work_time_ns(iter_work_ns[next]);
    }
    const double done = dispatch_end + work;
    makespan = std::max(makespan, done);
    free_at.push(done);
  }
  // Every process pays one final (empty) dispatch that discovers the loop
  // is complete, then the exit barrier.
  return makespan + dispatch_ns + p_.barrier_episode_ns;
}

}  // namespace force::machdep
