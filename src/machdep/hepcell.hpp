// Emulation of the Denelcor HEP's tagged memory.
//
// On the HEP every memory cell carried a hardware full/empty access-state
// bit; a read-and-set-empty or write-and-set-full retried in hardware until
// the state allowed it. The paper (§4.1.3, §4.2) leans on this: on the HEP
// an asynchronous variable needs no extra locks, while every other machine
// builds full/empty out of two locks.
//
// We emulate one tagged 64-bit cell with an atomic state word and C++20
// atomic wait/notify (the moral equivalent of the hardware retry queue).
// A transient BUSY state makes the value transfer atomic with the state
// transition, exactly as the hardware made them a single memory operation.
#pragma once

#include <atomic>
#include <cstdint>

namespace force::machdep {

/// One HEP tagged memory cell holding a 64-bit word.
class HepCell {
 public:
  /// Cells start empty, like Force async variables after Void.
  HepCell() = default;
  explicit HepCell(std::uint64_t initial_value);  // starts full

  HepCell(const HepCell&) = delete;
  HepCell& operator=(const HepCell&) = delete;

  /// Write-when-empty, leave full. Blocks while the cell is full.
  void produce(std::uint64_t value);
  /// Read-when-full, leave empty. Blocks while the cell is empty.
  std::uint64_t consume();
  /// Read-when-full, leave full (the Force `Copy` access).
  std::uint64_t copy() const;
  /// Force the state to empty regardless of the current state (Force Void).
  void make_empty();
  /// Force the state to full with the given value (used to init locks).
  void make_full(std::uint64_t value);

  /// Non-blocking variants; return false if the state forbids the access.
  bool try_produce(std::uint64_t value);
  bool try_consume(std::uint64_t* out);

  /// True if the cell is full at this instant (Force's state test).
  [[nodiscard]] bool is_full() const;

  // --- low-level protocol --------------------------------------------------
  // The Force runtime stores payloads wider than one word next to the cell;
  // these expose the busy-window protocol so such a payload can be moved
  // exactly while the hardware would have held the cell reserved.
  // Every seize_* must be paired with a publish_*.

  /// Blocks until the cell is empty, leaving it reserved (busy).
  void seize_empty() { await_and_seize(kEmpty); }
  /// Blocks until the cell is full, leaving it reserved (busy).
  void seize_full() { await_and_seize(kFull); }
  /// Ends a reservation, declaring the cell full.
  void publish_full();
  /// Ends a reservation, declaring the cell empty.
  void publish_empty();
  /// Non-blocking seize; true on success (cell now busy).
  bool try_seize_empty();
  bool try_seize_full();

  /// Total number of blocking waits across all cells (process-wide); a
  /// cheap proxy for how often the hardware retry queue would have engaged.
  static std::uint64_t total_waits();
  static void reset_wait_counter();

 private:
  enum State : std::uint32_t { kEmpty = 0, kFull = 1, kBusy = 2 };

  // Acquire the right to transition from `from`; parks on state_ otherwise.
  void await_and_seize(State from);

  std::atomic<std::uint32_t> state_{kEmpty};
  std::uint64_t value_ = 0;  // guarded by the kBusy transition protocol
};

}  // namespace force::machdep
