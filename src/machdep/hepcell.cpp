#include "machdep/hepcell.hpp"

#include "machdep/fiber.hpp"

namespace force::machdep {

namespace {
std::atomic<std::uint64_t> g_hep_waits{0};

/// Parks until the cell's state word moves past `expected`. Plain threads
/// use the futex-style atomic wait; an N:M pooled member instead yields
/// its worker to sibling continuations - the produce it waits for may be
/// scheduled on this very thread.
inline void park_on_state(std::atomic<std::uint32_t>& state,
                          std::uint32_t expected) {
  if (on_fiber()) {
    member_yield();
    return;
  }
  state.wait(expected, std::memory_order_relaxed);
}
}  // namespace

HepCell::HepCell(std::uint64_t initial_value)
    : state_(kFull), value_(initial_value) {}

void HepCell::await_and_seize(State from) {
  for (;;) {
    std::uint32_t expected = from;
    if (state_.compare_exchange_weak(expected, kBusy,
                                     std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
      return;
    }
    if (expected != from) {
      // Not in the desired state: park until the state word changes.
      // (kBusy windows are tiny; waiting on them too is harmless.)
      g_hep_waits.fetch_add(1, std::memory_order_relaxed);
      park_on_state(state_, expected);
    }
    // CAS failure with expected == from is spurious; just retry.
  }
}

void HepCell::produce(std::uint64_t value) {
  await_and_seize(kEmpty);
  value_ = value;
  state_.store(kFull, std::memory_order_release);
  state_.notify_all();
}

std::uint64_t HepCell::consume() {
  await_and_seize(kFull);
  const std::uint64_t v = value_;
  state_.store(kEmpty, std::memory_order_release);
  state_.notify_all();
  return v;
}

std::uint64_t HepCell::copy() const {
  auto* self = const_cast<HepCell*>(this);
  self->await_and_seize(kFull);
  const std::uint64_t v = value_;
  self->state_.store(kFull, std::memory_order_release);
  self->state_.notify_all();
  return v;
}

void HepCell::make_empty() {
  // Void must succeed from any state; win the busy protocol from either
  // stable state, then declare empty.
  for (;;) {
    std::uint32_t expected = state_.load(std::memory_order_relaxed);
    if (expected == kBusy) {
      park_on_state(state_, expected);
      continue;
    }
    if (state_.compare_exchange_weak(expected, kBusy,
                                     std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
      break;
    }
  }
  state_.store(kEmpty, std::memory_order_release);
  state_.notify_all();
}

void HepCell::make_full(std::uint64_t value) {
  for (;;) {
    std::uint32_t expected = state_.load(std::memory_order_relaxed);
    if (expected == kBusy) {
      park_on_state(state_, expected);
      continue;
    }
    if (state_.compare_exchange_weak(expected, kBusy,
                                     std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
      break;
    }
  }
  value_ = value;
  state_.store(kFull, std::memory_order_release);
  state_.notify_all();
}

bool HepCell::try_produce(std::uint64_t value) {
  std::uint32_t expected = kEmpty;
  if (!state_.compare_exchange_strong(expected, kBusy,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
    return false;
  }
  value_ = value;
  state_.store(kFull, std::memory_order_release);
  state_.notify_all();
  return true;
}

bool HepCell::try_consume(std::uint64_t* out) {
  std::uint32_t expected = kFull;
  if (!state_.compare_exchange_strong(expected, kBusy,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
    return false;
  }
  *out = value_;
  state_.store(kEmpty, std::memory_order_release);
  state_.notify_all();
  return true;
}

void HepCell::publish_full() {
  state_.store(kFull, std::memory_order_release);
  state_.notify_all();
}

void HepCell::publish_empty() {
  state_.store(kEmpty, std::memory_order_release);
  state_.notify_all();
}

bool HepCell::try_seize_empty() {
  std::uint32_t expected = kEmpty;
  return state_.compare_exchange_strong(expected, kBusy,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed);
}

bool HepCell::try_seize_full() {
  std::uint32_t expected = kFull;
  return state_.compare_exchange_strong(expected, kBusy,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed);
}

bool HepCell::is_full() const {
  return state_.load(std::memory_order_acquire) == kFull;
}

std::uint64_t HepCell::total_waits() {
  return g_hep_waits.load(std::memory_order_relaxed);
}

void HepCell::reset_wait_counter() {
  g_hep_waits.store(0, std::memory_order_relaxed);
}

}  // namespace force::machdep
