// Framed socket transport for the cluster process model.
//
// The cluster backend runs force members as separate processes with *no*
// shared mapping at all; every byte that crosses an address-space boundary
// travels through this module as a framed message:
//
//   +--------+---------+--------+-------------+----------------------+
//   | magic  | version | type   | payload_len | payload bytes ...    |
//   | u32    | u16     | u16    | u32         | payload_len bytes    |
//   +--------+---------+--------+-------------+----------------------+
//
// All header fields are little-endian. Frames are length-prefixed and
// versioned so a truncated, oversized, or mismatched stream is rejected
// deterministically instead of being misparsed. Payloads are flat byte
// sequences produced by the bounds-checked Writer/Reader below - only
// trivially-copyable data ever crosses the wire.
//
// The pure encode/decode half of this file (header codec, Writer, Reader)
// has no socket dependency and is unit/fuzz-tested directly in
// tests/test_cluster_proto.cpp.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace force::machdep::net {

/// 'FRCN' - distinguishes force cluster frames from stray bytes.
inline constexpr std::uint32_t kFrameMagic = 0x4652434Eu;

/// Bumped whenever the frame layout or any payload layout changes.
inline constexpr std::uint16_t kProtocolVersion = 1;

/// Fixed size of the frame header on the wire.
inline constexpr std::size_t kFrameHeaderBytes = 12;

/// Upper bound on a single payload. Large enough for a full-arena update
/// flush (arenas default to 4 MiB), small enough that a corrupted length
/// field cannot drive an allocation into the gigabytes.
inline constexpr std::uint32_t kMaxPayloadBytes = 64u * 1024u * 1024u;

/// Every message the coordinator and peers exchange. The numeric values
/// are wire-visible; append only, never renumber.
enum class MsgType : std::uint16_t {
  kHello = 1,         // peer -> coord: {proc0 u32}
  kHelloAck = 2,      // coord -> peer: {}
  kSite = 3,          // peer -> coord (one-way): {site str}
  kError = 4,         // peer -> coord (one-way): {what str}
  kUpdates = 5,       // peer -> coord (one-way): {records}
  kBarrierArrive = 6, // peer -> coord: {key str, width u32, has_section u8}
  kBarrierRunSection = 7,  // coord -> champion: {records}
  kBarrierSectionDone = 8, // champion -> coord: {key str}
  kBarrierRelease = 9,     // coord -> peer: {records}
  kLockAcquire = 10,  // peer -> coord: {key str}
  kLockGranted = 11,  // coord -> peer: {records}
  kLockTry = 12,      // peer -> coord: {key str}
  kLockTryReply = 13, // coord -> peer: {ok u8, records if ok}
  kLockRelease = 14,  // peer -> coord (one-way): {key str}
  kDispatchReset = 15,      // peer -> coord: {key str}
  kDispatchResetAck = 16,   // coord -> peer: {}
  kDispatchClaim = 17,      // peer -> coord: {key str, want i64, limit i64,
                            //                 divisor i64 (0 = plain claim)}
  kDispatchClaimReply = 18, // coord -> peer: {begin i64, count i64}
  kAskforPut = 19,      // peer -> coord (one-way): {key str, task bytes}
  kAskforAsk = 20,      // peer -> coord: {key str}
  kAskforGrant = 21,    // coord -> peer: {has_task u8, records, task bytes}
  kAskforComplete = 22, // peer -> coord (one-way): {key str}
  kAskforProbend = 23,  // peer -> coord (one-way): {key str}
  kAskforStatus = 24,   // peer -> coord: {key str}
  kAskforStatusReply = 25, // coord -> peer: {ended u8, granted u64}
  kCellProduce = 26,    // peer -> coord: {key str, value bytes}
  kCellProduceAck = 27, // coord -> peer: {records}
  kCellConsume = 28,    // peer -> coord: {key str, copy u8}
  kCellValue = 29,      // coord -> peer: {records, value bytes}
  kCellTryProduce = 30, // peer -> coord: {key str, value bytes}
  kCellTryConsume = 31, // peer -> coord: {key str}
  kCellTryReply = 32,   // coord -> peer: {ok u8, records, value bytes if ok}
  kCellVoid = 33,       // peer -> coord: {key str}
  kCellVoidAck = 34,    // coord -> peer: {}
  kJoin = 35,           // peer -> coord: {}
  kJoinAck = 36,        // coord -> peer: {}
  kPoison = 37,         // coord -> peer (one-way, the only unsolicited
                        // coordinator frame): {}
};

struct FrameHeader {
  std::uint16_t version = kProtocolVersion;
  std::uint16_t type = 0;
  std::uint32_t payload_bytes = 0;
};

enum class DecodeStatus {
  kOk,         // header decoded; *out is valid
  kNeedMore,   // fewer than kFrameHeaderBytes available
  kBadMagic,   // stream is not force cluster traffic
  kBadVersion, // peer speaks a different protocol revision
  kOversized,  // payload_len exceeds kMaxPayloadBytes
};

/// Serializes a header into exactly kFrameHeaderBytes at `out`.
void encode_frame_header(const FrameHeader& h,
                         unsigned char out[kFrameHeaderBytes]);

/// Decodes a header from the first kFrameHeaderBytes of `data`. Never
/// reads past `len`; never trusts `payload_bytes` beyond the bound check.
DecodeStatus decode_frame_header(const unsigned char* data, std::size_t len,
                                 FrameHeader* out);

// ---------------------------------------------------------------------------
// Payload codec: little-endian, bounds-checked, allocation-bounded.
// ---------------------------------------------------------------------------

/// Appends fields to a growable byte buffer.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<unsigned char>(v)); }
  void u16(std::uint16_t v) { raw_le(&v, sizeof v); }
  void u32(std::uint32_t v) { raw_le(&v, sizeof v); }
  void u64(std::uint64_t v) { raw_le(&v, sizeof v); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  /// Length-prefixed byte run.
  void bytes(const void* data, std::size_t n) {
    u32(static_cast<std::uint32_t>(n));
    const auto* p = static_cast<const unsigned char*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  /// Length-prefixed UTF-8/opaque string.
  void str(const std::string& s) { bytes(s.data(), s.size()); }

  [[nodiscard]] const std::vector<unsigned char>& data() const {
    return buf_;
  }
  [[nodiscard]] std::vector<unsigned char> take() { return std::move(buf_); }

 private:
  void raw_le(const void* v, std::size_t n) {
    // Little-endian hosts only (matches the rest of machdep); a
    // static_assert in net.cpp enforces the assumption.
    const auto* p = static_cast<const unsigned char*>(v);
    buf_.insert(buf_.end(), p, p + n);
  }
  std::vector<unsigned char> buf_;
};

/// Consumes fields from a fixed byte span. Every getter returns false
/// (and latches !ok()) instead of reading out of bounds, so arbitrary
/// bytes can be fed through a Reader without UB - the fuzz tests do.
class Reader {
 public:
  Reader(const unsigned char* data, std::size_t n) : p_(data), end_(data + n) {}
  explicit Reader(const std::vector<unsigned char>& v)
      : Reader(v.data(), v.size()) {}

  bool u8(std::uint8_t* v) { return raw(v, 1); }
  bool u16(std::uint16_t* v) { return raw(v, sizeof *v); }
  bool u32(std::uint32_t* v) { return raw(v, sizeof *v); }
  bool u64(std::uint64_t* v) { return raw(v, sizeof *v); }
  bool i64(std::int64_t* v) {
    std::uint64_t u = 0;
    if (!u64(&u)) return false;
    std::memcpy(v, &u, sizeof u);
    return true;
  }

  /// Length-prefixed byte run into an owned buffer.
  bool bytes(std::vector<unsigned char>* out) {
    std::uint32_t n = 0;
    if (!u32(&n)) return false;
    if (static_cast<std::size_t>(end_ - p_) < n) return fail();
    out->assign(p_, p_ + n);
    p_ += n;
    return true;
  }

  bool str(std::string* out) {
    std::uint32_t n = 0;
    if (!u32(&n)) return false;
    if (static_cast<std::size_t>(end_ - p_) < n) return fail();
    out->assign(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return true;
  }

  /// True once any getter has run out of bytes.
  [[nodiscard]] bool ok() const { return ok_; }
  /// True when the payload was consumed exactly.
  [[nodiscard]] bool exhausted() const { return ok_ && p_ == end_; }
  [[nodiscard]] std::size_t remaining() const {
    return static_cast<std::size_t>(end_ - p_);
  }

 private:
  bool raw(void* out, std::size_t n) {
    if (!ok_ || static_cast<std::size_t>(end_ - p_) < n) return fail();
    std::memcpy(out, p_, n);
    p_ += n;
    return true;
  }
  bool fail() {
    ok_ = false;
    return false;
  }
  const unsigned char* p_;
  const unsigned char* end_;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Blocking stream connection over a socket fd.
// ---------------------------------------------------------------------------

/// Owns one end of a stream socket. Peers use it blocking; the coordinator
/// reads through its own poll loop and only uses send_frame/fd here.
class Conn {
 public:
  Conn() = default;
  explicit Conn(int fd) : fd_(fd) {}
  Conn(Conn&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Conn& operator=(Conn&& other) noexcept;
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;
  ~Conn() { close(); }

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Writes one complete frame (blocking until fully sent). Throws
  /// via FORCE_CHECK on a broken pipe or malformed size.
  void send_frame(MsgType type, const void* payload, std::size_t n);
  void send_frame(MsgType type, const std::vector<unsigned char>& payload) {
    send_frame(type, payload.data(), payload.size());
  }

  /// Blocks for one complete frame. Returns false on orderly EOF at a
  /// frame boundary; throws on malformed headers or mid-frame EOF.
  bool recv_frame(MsgType* type, std::vector<unsigned char>* payload);

  /// Tears both directions down without closing the fd (the torn-connection
  /// fault-injection hook): the far side sees EOF while this process lives.
  void shutdown_both();

  void close();

 private:
  int fd_ = -1;
};

/// A connected pair of stream sockets on the named transport:
/// "unix" (AF_UNIX socketpair, default) or "tcp" (loopback TCP).
/// first = coordinator end, second = peer end.
std::pair<Conn, Conn> connected_pair(const std::string& transport);

/// Sends every byte of `data` on `fd`, waiting via poll(2) when the socket
/// buffer is full. Returns false if the far side has gone away (EPIPE /
/// ECONNRESET) - callers decide whether that is fatal.
bool send_all(int fd, const unsigned char* data, std::size_t n);

}  // namespace force::machdep::net
