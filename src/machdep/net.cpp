#include "machdep/net.hpp"

#include "util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#endif

#include <bit>

namespace force::machdep::net {

static_assert(std::endian::native == std::endian::little,
              "the cluster wire codec assumes a little-endian host (as does "
              "the rest of machdep)");

void encode_frame_header(const FrameHeader& h,
                         unsigned char out[kFrameHeaderBytes]) {
  std::uint32_t magic = kFrameMagic;
  std::memcpy(out, &magic, 4);
  std::memcpy(out + 4, &h.version, 2);
  std::memcpy(out + 6, &h.type, 2);
  std::memcpy(out + 8, &h.payload_bytes, 4);
}

DecodeStatus decode_frame_header(const unsigned char* data, std::size_t len,
                                 FrameHeader* out) {
  if (len < kFrameHeaderBytes) return DecodeStatus::kNeedMore;
  std::uint32_t magic = 0;
  std::memcpy(&magic, data, 4);
  if (magic != kFrameMagic) return DecodeStatus::kBadMagic;
  FrameHeader h;
  std::memcpy(&h.version, data + 4, 2);
  std::memcpy(&h.type, data + 6, 2);
  std::memcpy(&h.payload_bytes, data + 8, 4);
  if (h.version != kProtocolVersion) return DecodeStatus::kBadVersion;
  if (h.payload_bytes > kMaxPayloadBytes) return DecodeStatus::kOversized;
  *out = h;
  return DecodeStatus::kOk;
}

#if defined(__unix__) || defined(__APPLE__)

Conn& Conn::operator=(Conn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Conn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Conn::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

bool send_all(int fd, const unsigned char* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      struct pollfd pfd{fd, POLLOUT, 0};
      (void)::poll(&pfd, 1, 100);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;  // EPIPE / ECONNRESET: the far side is gone.
  }
  return true;
}

void Conn::send_frame(MsgType type, const void* payload, std::size_t n) {
  FORCE_CHECK(fd_ >= 0, "send_frame on a closed cluster connection");
  FORCE_CHECK(n <= kMaxPayloadBytes,
              "cluster frame payload exceeds kMaxPayloadBytes");
  unsigned char hdr[kFrameHeaderBytes];
  FrameHeader h;
  h.type = static_cast<std::uint16_t>(type);
  h.payload_bytes = static_cast<std::uint32_t>(n);
  encode_frame_header(h, hdr);
  const bool ok =
      send_all(fd_, hdr, sizeof hdr) &&
      (n == 0 ||
       send_all(fd_, static_cast<const unsigned char*>(payload), n));
  FORCE_CHECK(ok, "cluster connection closed while sending a frame (the "
                  "coordinator is gone)");
}

namespace {

// Blocking read of exactly n bytes. Returns bytes read (short only at EOF).
std::size_t recv_exact(int fd, unsigned char* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    break;  // EOF or hard error.
  }
  return got;
}

}  // namespace

bool Conn::recv_frame(MsgType* type, std::vector<unsigned char>* payload) {
  FORCE_CHECK(fd_ >= 0, "recv_frame on a closed cluster connection");
  unsigned char hdr[kFrameHeaderBytes];
  const std::size_t got = recv_exact(fd_, hdr, sizeof hdr);
  if (got == 0) return false;  // orderly EOF at a frame boundary
  FORCE_CHECK(got == sizeof hdr,
              "cluster connection closed mid-frame (truncated header)");
  FrameHeader h;
  const DecodeStatus st = decode_frame_header(hdr, sizeof hdr, &h);
  FORCE_CHECK(st == DecodeStatus::kOk,
              st == DecodeStatus::kBadMagic
                  ? "cluster frame rejected: bad magic"
                  : (st == DecodeStatus::kBadVersion
                         ? "cluster frame rejected: protocol version mismatch"
                         : "cluster frame rejected: oversized payload"));
  payload->resize(h.payload_bytes);
  if (h.payload_bytes != 0) {
    const std::size_t body = recv_exact(fd_, payload->data(), h.payload_bytes);
    FORCE_CHECK(body == h.payload_bytes,
                "cluster connection closed mid-frame (truncated payload)");
  }
  *type = static_cast<MsgType>(h.type);
  return true;
}

std::pair<Conn, Conn> connected_pair(const std::string& transport) {
  if (transport == "unix" || transport.empty()) {
    int fds[2] = {-1, -1};
    FORCE_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
                "socketpair(AF_UNIX) failed for the cluster transport");
    return {Conn(fds[0]), Conn(fds[1])};
  }
  FORCE_CHECK(transport == "tcp",
              "cluster_transport must be \"unix\" or \"tcp\"");
  // Loopback TCP: listen on an ephemeral port, connect, accept. Models the
  // real-cluster topology (a routable stream with no kernel-shared state)
  // while staying self-contained in one host.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  FORCE_CHECK(lfd >= 0, "socket(AF_INET) failed for the cluster transport");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  bool ok = ::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0 &&
            ::listen(lfd, 1) == 0;
  socklen_t alen = sizeof addr;
  ok = ok && ::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen) == 0;
  FORCE_CHECK(ok, "could not bind a loopback listener for cluster tcp");
  const int cfd = ::socket(AF_INET, SOCK_STREAM, 0);
  FORCE_CHECK(cfd >= 0, "socket(AF_INET) failed for the cluster transport");
  FORCE_CHECK(
      ::connect(cfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0,
      "loopback connect failed for cluster tcp");
  const int afd = ::accept(lfd, nullptr, nullptr);
  ::close(lfd);
  FORCE_CHECK(afd >= 0, "loopback accept failed for cluster tcp");
  int one = 1;
  (void)::setsockopt(afd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  (void)::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return {Conn(afd), Conn(cfd)};
}

#else  // !unix

Conn& Conn::operator=(Conn&& other) noexcept {
  fd_ = other.fd_;
  other.fd_ = -1;
  return *this;
}
void Conn::close() { fd_ = -1; }
void Conn::shutdown_both() {}
bool send_all(int, const unsigned char*, std::size_t) { return false; }
void Conn::send_frame(MsgType, const void*, std::size_t) {
  FORCE_CHECK(false, "the cluster transport requires a POSIX platform");
}
bool Conn::recv_frame(MsgType*, std::vector<unsigned char>*) {
  FORCE_CHECK(false, "the cluster transport requires a POSIX platform");
}
std::pair<Conn, Conn> connected_pair(const std::string&) {
  FORCE_CHECK(false, "the cluster transport requires a POSIX platform");
}

#endif

}  // namespace force::machdep::net
