#include "machdep/arena.hpp"

#include <cstring>

#include "util/check.hpp"

namespace force::machdep {

namespace {
constexpr std::byte kGuardFill{0xAD};

std::size_t round_up(std::size_t v, std::size_t to) {
  FORCE_CHECK(to != 0 && (to & (to - 1)) == 0, "alignment must be power of 2");
  return (v + to - 1) & ~(to - 1);
}
}  // namespace

// --- in-mapping metadata (kSharedMapping) ----------------------------------
//
// Heap-backed arenas keep their name table in a std::map, which forked
// children cannot share. The shared backing keeps a fixed-capacity table
// inside the mapping itself, guarded by a process-shared lock, so a name
// lazily allocated by one child is visible - at the same offset - to all.

struct ShmArenaEntry {
  char name[152] = {};
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t align = 1;
  std::uint32_t cls = 0;     // VarClass
  std::uint32_t placed = 0;  // 0 = declared only, 1 = placed
};
static_assert(sizeof(ShmArenaEntry) <= 192, "arena entry grew unexpectedly");

struct ShmArenaHeader {
  shm::ShmLockState lock;
  std::uint32_t entry_count = 0;
  std::atomic<std::uint64_t> generation{0};  ///< bumped per placement
  std::uint64_t cursor = 0;
  std::uint64_t padding_bytes = 0;
  static constexpr std::size_t kMaxEntries = 1024;
  ShmArenaEntry entries[kMaxEntries];
};

const char* arena_backing_name(ArenaBacking b) {
  switch (b) {
    case ArenaBacking::kPrivateHeap: return "private-heap";
    case ArenaBacking::kSharedMapping: return "shared-mapping";
  }
  return "unknown";
}

/// Scoped metadata lock: the per-process mutex for heap backing, the
/// in-mapping futex lock for shared backing.
class SharedArena::Guard {
 public:
  explicit Guard(const SharedArena& a) : a_(a) {
    if (a_.shm_header_ != nullptr) {
      shm::shm_lock_acquire(a_.shm_header_->lock);
    } else {
      a_.mutex_.lock();
    }
  }
  ~Guard() {
    if (a_.shm_header_ != nullptr) {
      shm::shm_lock_release(a_.shm_header_->lock);
    } else {
      a_.mutex_.unlock();
    }
  }
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

 private:
  const SharedArena& a_;
};

const char* sharing_strategy_name(SharingStrategy s) {
  switch (s) {
    case SharingStrategy::kCompileTime: return "compile-time";
    case SharingStrategy::kLinkTime: return "link-time";
    case SharingStrategy::kRuntimePadded: return "runtime-padded";
    case SharingStrategy::kPageAlignedStart: return "page-aligned-start";
  }
  return "unknown";
}

SharedArena::SharedArena(std::size_t capacity_bytes, std::size_t page_size,
                         SharingStrategy strategy, ArenaBacking backing)
    : page_size_(page_size), strategy_(strategy), backing_(backing) {
  FORCE_CHECK(page_size_ >= 64 && (page_size_ & (page_size_ - 1)) == 0,
              "page size must be a power of two >= 64");
  usable_bytes_ = round_up(capacity_bytes, page_size_);
  if (strategy_ == SharingStrategy::kRuntimePadded) {
    // The Encore port pads extra space at the beginning and the end of the
    // shared area to keep shared and private declarations apart.
    guard_bytes_front_ = page_size_;
    guard_bytes_back_ = page_size_;
  }
  storage_bytes_ = usable_bytes_ + guard_bytes_front_ + guard_bytes_back_ +
                   page_size_;  // headroom so the usable base can be aligned
  if (backing_ == ArenaBacking::kSharedMapping) {
    const std::size_t header_bytes =
        round_up(sizeof(ShmArenaHeader), page_size_);
    mapping_ =
        std::make_unique<shm::SharedMapping>(header_bytes + storage_bytes_);
    shm_header_ = ::new (mapping_->data()) ShmArenaHeader();
    shm_header_->cursor = 0;
    shm_header_->padding_bytes = 0;
    shm_storage_ = static_cast<std::byte*>(mapping_->data()) + header_bytes;
  } else {
    storage_ = std::make_unique<std::byte[]>(storage_bytes_);
  }
  if (shm_header_ != nullptr) {
    shm_header_->padding_bytes = guard_bytes_front_ + guard_bytes_back_;
  } else {
    padding_bytes_ = guard_bytes_front_ + guard_bytes_back_;
  }
  if (guard_bytes_front_ != 0) {
    std::memset(usable_base() - guard_bytes_front_,
                static_cast<int>(kGuardFill), guard_bytes_front_);
  }
  if (guard_bytes_back_ != 0) {
    std::memset(usable_base() + usable_bytes_, static_cast<int>(kGuardFill),
                guard_bytes_back_);
  }
}

std::byte* SharedArena::usable_base() {
  // The usable region always begins on a page boundary: the Alliant
  // requires it, the Encore's page arithmetic assumes it, and it makes
  // every allocation's alignment guarantee independent of where new[]
  // (or mmap) happened to place the backing storage.
  std::byte* raw =
      shm_storage_ != nullptr ? shm_storage_ : storage_.get();
  const auto addr = round_up(
      reinterpret_cast<std::uintptr_t>(raw) + guard_bytes_front_, page_size_);
  return reinterpret_cast<std::byte*>(addr);
}

const std::byte* SharedArena::usable_base() const {
  return const_cast<SharedArena*>(this)->usable_base();
}

std::byte* SharedArena::raw_bytes() { return usable_base(); }

const std::byte* SharedArena::raw_bytes() const { return usable_base(); }

ShmArenaEntry* SharedArena::shm_find_locked(const std::string& name) const {
  for (std::uint32_t i = 0; i < shm_header_->entry_count; ++i) {
    ShmArenaEntry& e = shm_header_->entries[i];
    if (name == e.name) return &e;
  }
  return nullptr;
}

ShmArenaEntry* SharedArena::shm_add_locked(const std::string& name,
                                           std::size_t bytes,
                                           std::size_t align, VarClass cls) {
  FORCE_CHECK(name.size() < sizeof(ShmArenaEntry{}.name),
              "shared name too long for the process-shared arena table: " +
                  name);
  FORCE_CHECK(shm_header_->entry_count < ShmArenaHeader::kMaxEntries,
              "process-shared arena name table full (" +
                  std::to_string(ShmArenaHeader::kMaxEntries) + " entries)");
  ShmArenaEntry& e = shm_header_->entries[shm_header_->entry_count];
  std::memcpy(e.name, name.data(), name.size());
  e.name[name.size()] = '\0';
  e.bytes = bytes;
  e.align = align;
  e.cls = static_cast<std::uint32_t>(cls);
  e.placed = 0;
  ++shm_header_->entry_count;  // publish only after the fields are written
  return &e;
}

void SharedArena::declare_locked(const std::string& name, std::size_t bytes,
                                 std::size_t align, VarClass cls) {
  FORCE_CHECK(!linked_, "declare after link(): the Sequent protocol "
                        "collects all shared names in the first run");
  // Fortran COMMON semantics: several modules may declare the same shared
  // block; identical shapes resolve to one storage, mismatches are the
  // link error a 1989 loader would give.
  if (shm_header_ != nullptr) {
    if (ShmArenaEntry* e = shm_find_locked(name)) {
      FORCE_CHECK(e->bytes == bytes &&
                      e->cls == static_cast<std::uint32_t>(cls),
                  "shared name re-declared with a different shape: " + name);
      return;
    }
    ShmArenaEntry* e = shm_add_locked(name, bytes, align, cls);
    if (strategy_ != SharingStrategy::kLinkTime) {
      e->offset = place(bytes, align);
      e->placed = 1;
    }
    return;
  }
  if (auto it = allocations_.find(name); it != allocations_.end()) {
    FORCE_CHECK(it->second.bytes == bytes && it->second.cls == cls,
                "shared name re-declared with a different shape: " + name);
    return;
  }
  Allocation a;
  a.bytes = bytes;
  a.align = align;
  a.cls = cls;
  if (strategy_ == SharingStrategy::kLinkTime) {
    a.placed = false;  // placement deferred to link()
  } else {
    a.offset = place(bytes, align);
    a.placed = true;
  }
  allocations_[name] = a;
}

void SharedArena::declare(const std::string& name, std::size_t bytes,
                          std::size_t align, VarClass cls) {
  Guard g(*this);
  declare_locked(name, bytes, align, cls);
}

void SharedArena::link() {
  Guard g(*this);
  FORCE_CHECK(strategy_ == SharingStrategy::kLinkTime,
              "link() is only part of the link-time sharing protocol");
  FORCE_CHECK(!linked_, "link() called twice");
  if (shm_header_ != nullptr) {
    for (std::uint32_t i = 0; i < shm_header_->entry_count; ++i) {
      ShmArenaEntry& e = shm_header_->entries[i];
      if (e.placed == 0) {
        e.offset = place(e.bytes, e.align);
        e.placed = 1;
        shm_header_->generation.fetch_add(1, std::memory_order_acq_rel);
      }
    }
  } else {
    for (auto& [name, a] : allocations_) {
      if (!a.placed) {
        a.offset = place(a.bytes, a.align);
        a.placed = true;
        generation_.fetch_add(1, std::memory_order_acq_rel);
      }
    }
  }
  linked_ = true;
}

std::uint64_t SharedArena::generation() const {
  if (shm_header_ != nullptr) {
    return shm_header_->generation.load(std::memory_order_acquire);
  }
  return generation_.load(std::memory_order_acquire);
}

void* SharedArena::allocate_locked(const std::string& name, std::size_t bytes,
                                   std::size_t align, VarClass cls,
                                   bool* created) {
  if (created != nullptr) *created = false;
  if (shm_header_ != nullptr) {
    if (ShmArenaEntry* e = shm_find_locked(name)) {
      FORCE_CHECK(e->placed != 0, "name declared but not linked yet: " + name);
      FORCE_CHECK(e->bytes >= bytes &&
                      e->cls == static_cast<std::uint32_t>(cls),
                  "allocation mismatch for shared name " + name);
      return usable_base() + e->offset;
    }
    if (strategy_ == SharingStrategy::kLinkTime && name.rfind('%', 0) != 0) {
      // Runtime-internal names (leading '%': lock words, barrier states,
      // construct machinery) are exempt from the declare-before-link
      // protocol - on the real Sequent they would live in the port's own
      // runtime library, not in user COMMON.
      FORCE_CHECK(!linked_,
                  "shared name not declared before link(): " + name +
                      " (the Sequent port would fail to link this variable)");
    }
    ShmArenaEntry* e = shm_add_locked(name, bytes, align, cls);
    e->offset = place(bytes, align);
    e->placed = 1;
    shm_header_->generation.fetch_add(1, std::memory_order_acq_rel);
    if (created != nullptr) *created = true;
    return usable_base() + e->offset;
  }
  auto it = allocations_.find(name);
  if (it != allocations_.end()) {
    Allocation& a = it->second;
    FORCE_CHECK(a.placed, "name declared but not linked yet: " + name);
    FORCE_CHECK(a.bytes >= bytes && a.cls == cls,
                "allocation mismatch for shared name " + name);
    return usable_base() + a.offset;
  }
  if (strategy_ == SharingStrategy::kLinkTime && name.rfind('%', 0) != 0) {
    // The Sequent port would fail to link a shared variable that no
    // startup routine declared; allow late declaration only pre-link.
    // Runtime-internal names (leading '%') are exempt, as above.
    FORCE_CHECK(!linked_,
                "shared name not declared before link(): " + name +
                    " (the Sequent port would fail to link this variable)");
  }
  Allocation a;
  a.bytes = bytes;
  a.align = align;
  a.cls = cls;
  a.offset = place(bytes, align);
  a.placed = true;
  allocations_[name] = a;
  generation_.fetch_add(1, std::memory_order_acq_rel);
  if (created != nullptr) *created = true;
  return usable_base() + a.offset;
}

void* SharedArena::allocate(const std::string& name, std::size_t bytes,
                            std::size_t align, VarClass cls) {
  Guard g(*this);
  return allocate_locked(name, bytes, align, cls, nullptr);
}

void* SharedArena::allocate_once(const std::string& name, std::size_t bytes,
                                 std::size_t align, VarClass cls,
                                 const std::function<void(void*)>& init) {
  // `init` runs under the metadata lock, so construct-once holds across
  // forked processes too: the first process to place the name constructs
  // it while every racing sibling is parked on the in-mapping lock.
  Guard g(*this);
  bool created = false;
  void* p = allocate_locked(name, bytes, align, cls, &created);
  if (created && init) init(p);
  return p;
}

void* SharedArena::resolve(const std::string& name) const {
  Guard g(*this);
  if (shm_header_ != nullptr) {
    ShmArenaEntry* e = shm_find_locked(name);
    FORCE_CHECK(e != nullptr, "unknown shared name " + name);
    FORCE_CHECK(e->placed != 0, "shared name not yet linked: " + name);
    return const_cast<std::byte*>(usable_base()) + e->offset;
  }
  auto it = allocations_.find(name);
  FORCE_CHECK(it != allocations_.end(), "unknown shared name " + name);
  FORCE_CHECK(it->second.placed, "shared name not yet linked: " + name);
  return const_cast<std::byte*>(usable_base()) + it->second.offset;
}

bool SharedArena::contains_name(const std::string& name) const {
  Guard g(*this);
  if (shm_header_ != nullptr) return shm_find_locked(name) != nullptr;
  return allocations_.contains(name);
}

std::size_t SharedArena::place(std::size_t bytes, std::size_t align) {
  FORCE_CHECK(bytes > 0, "zero-byte shared allocation");
  // The cursor and padding tally live in the mapping under kSharedMapping
  // so children placing names stay consistent with each other.
  std::size_t cursor = shm_header_ != nullptr
                           ? static_cast<std::size_t>(shm_header_->cursor)
                           : cursor_;
  std::size_t padding =
      shm_header_ != nullptr
          ? static_cast<std::size_t>(shm_header_->padding_bytes)
          : padding_bytes_;
  std::size_t offset = round_up(cursor, align);
  // Encore rule: a shared variable no larger than a page must lie within a
  // single shared page; bump it to the next page if it would straddle one.
  if (bytes <= page_size_) {
    const std::size_t page_begin = offset / page_size_;
    const std::size_t page_end = (offset + bytes - 1) / page_size_;
    if (page_begin != page_end) {
      const std::size_t bumped = round_up(offset, page_size_);
      padding += bumped - offset;
      offset = bumped;
    }
  }
  FORCE_CHECK(offset + bytes <= usable_bytes_,
              "shared arena exhausted; enlarge ForceConfig::arena_bytes");
  padding += offset - cursor;
  cursor = offset + bytes;
  if (shm_header_ != nullptr) {
    shm_header_->cursor = cursor;
    shm_header_->padding_bytes = padding;
  } else {
    cursor_ = cursor;
    padding_bytes_ = padding;
  }
  return offset;
}

std::size_t SharedArena::bytes_used() const {
  Guard g(*this);
  if (shm_header_ != nullptr) {
    return static_cast<std::size_t>(shm_header_->cursor);
  }
  return cursor_;
}

std::size_t SharedArena::padding_bytes() const {
  Guard g(*this);
  if (shm_header_ != nullptr) {
    return static_cast<std::size_t>(shm_header_->padding_bytes);
  }
  return padding_bytes_;
}

bool SharedArena::is_shared_address(const void* p) const {
  const auto* b = static_cast<const std::byte*>(p);
  const std::byte* base = usable_base();
  return b >= base && b < base + usable_bytes_;
}

std::size_t SharedArena::pages() const { return usable_bytes_ / page_size_; }

std::size_t SharedArena::page_of(const void* p) const {
  FORCE_CHECK(is_shared_address(p), "address not in the shared arena");
  return static_cast<std::size_t>(static_cast<const std::byte*>(p) -
                                  usable_base()) /
         page_size_;
}

bool SharedArena::guards_intact() const {
  const std::byte* front = usable_base() - guard_bytes_front_;
  for (std::size_t i = 0; i < guard_bytes_front_; ++i) {
    if (front[i] != kGuardFill) return false;
  }
  const std::byte* back = usable_base() + usable_bytes_;
  for (std::size_t i = 0; i < guard_bytes_back_; ++i) {
    if (back[i] != kGuardFill) return false;
  }
  return true;
}

void SharedArena::corrupt_guard_for_test() {
  FORCE_CHECK(guard_bytes_front_ > 0, "no guard pages in this strategy");
  *(usable_base() - 1) = std::byte{0x00};
}

void SharedArena::for_each_allocation(
    const std::function<void(const std::string&, void*, std::size_t)>& fn)
    const {
  Guard g(*this);
  auto* self = const_cast<SharedArena*>(this);
  if (shm_header_ != nullptr) {
    for (std::uint32_t i = 0; i < shm_header_->entry_count; ++i) {
      const ShmArenaEntry& e = shm_header_->entries[i];
      if (e.placed == 0) continue;
      fn(std::string(e.name), self->usable_base() + e.offset, e.bytes);
    }
    return;
  }
  for (const auto& [name, alloc] : allocations_) {
    if (!alloc.placed) continue;
    fn(name, self->usable_base() + alloc.offset, alloc.bytes);
  }
}

// ---------------------------------------------------------------------------
// PrivateSpace
// ---------------------------------------------------------------------------

PrivateSpace::PrivateSpace(std::size_t data_bytes, std::size_t stack_bytes) {
  data_.capacity = data_bytes;
  data_.parent = std::make_unique<std::byte[]>(data_bytes);
  std::memset(data_.parent.get(), 0, data_bytes);
  stack_.capacity = stack_bytes;
  stack_.parent = std::make_unique<std::byte[]>(stack_bytes);
  std::memset(stack_.parent.get(), 0, stack_bytes);
}

std::size_t PrivateSpace::register_slot(Region region, std::size_t bytes,
                                        std::size_t align) {
  FORCE_CHECK(!materialized_, "register_slot after materialize()");
  RegionState& r = state(region);
  const std::size_t offset = round_up(r.cursor, align);
  FORCE_CHECK(offset + bytes <= r.capacity, "private space exhausted");
  r.cursor = offset + bytes;
  return offset;
}

void* PrivateSpace::parent_ptr(Region region, std::size_t offset) {
  RegionState& r = state(region);
  FORCE_CHECK(offset < r.capacity, "private offset out of range");
  return r.parent.get() + offset;
}

void PrivateSpace::materialize(int nproc, InitMode mode) {
  FORCE_CHECK(!materialized_, "materialize() called twice");
  FORCE_CHECK(nproc > 0, "need at least one process");
  nproc_ = nproc;
  bytes_copied_ = 0;

  auto make_copies = [&](RegionState& r, bool copy_from_parent) {
    r.per_process.resize(static_cast<std::size_t>(nproc));
    for (auto& seg : r.per_process) {
      seg = std::make_unique<std::byte[]>(r.capacity);
      if (copy_from_parent) {
        std::memcpy(seg.get(), r.parent.get(), r.capacity);
        bytes_copied_ += r.capacity;
      } else {
        std::memset(seg.get(), 0, r.capacity);
      }
    }
    r.aliased_to_parent = false;
  };

  switch (mode) {
    case InitMode::kCopyBoth:
      // Unix fork: "a complete copy of the data and stack is produced for
      // each forked process" (paper §4.1.1).
      make_copies(data_, /*copy_from_parent=*/true);
      make_copies(stack_, /*copy_from_parent=*/true);
      break;
    case InitMode::kShareDataCopyStack:
      // Alliant: data segments shared, only the stack is private.
      data_.per_process.clear();
      data_.aliased_to_parent = true;
      make_copies(stack_, /*copy_from_parent=*/true);
      break;
    case InitMode::kZeroBoth:
      // HEP: a created process starts a fresh subroutine activation.
      make_copies(data_, /*copy_from_parent=*/false);
      make_copies(stack_, /*copy_from_parent=*/false);
      break;
  }
  materialized_ = true;
}

void* PrivateSpace::ptr(int proc, Region region, std::size_t offset) {
  FORCE_CHECK(materialized_, "ptr() before materialize()");
  FORCE_CHECK(proc >= 0 && proc < nproc_, "process id out of range");
  RegionState& r = state(region);
  FORCE_CHECK(offset < r.capacity, "private offset out of range");
  if (r.aliased_to_parent) return r.parent.get() + offset;
  return r.per_process[static_cast<std::size_t>(proc)].get() + offset;
}

}  // namespace force::machdep
