#include "machdep/arena.hpp"

#include <cstring>

#include "util/check.hpp"

namespace force::machdep {

namespace {
constexpr std::byte kGuardFill{0xAD};

std::size_t round_up(std::size_t v, std::size_t to) {
  FORCE_CHECK(to != 0 && (to & (to - 1)) == 0, "alignment must be power of 2");
  return (v + to - 1) & ~(to - 1);
}
}  // namespace

const char* sharing_strategy_name(SharingStrategy s) {
  switch (s) {
    case SharingStrategy::kCompileTime: return "compile-time";
    case SharingStrategy::kLinkTime: return "link-time";
    case SharingStrategy::kRuntimePadded: return "runtime-padded";
    case SharingStrategy::kPageAlignedStart: return "page-aligned-start";
  }
  return "unknown";
}

SharedArena::SharedArena(std::size_t capacity_bytes, std::size_t page_size,
                         SharingStrategy strategy)
    : page_size_(page_size), strategy_(strategy) {
  FORCE_CHECK(page_size_ >= 64 && (page_size_ & (page_size_ - 1)) == 0,
              "page size must be a power of two >= 64");
  usable_bytes_ = round_up(capacity_bytes, page_size_);
  if (strategy_ == SharingStrategy::kRuntimePadded) {
    // The Encore port pads extra space at the beginning and the end of the
    // shared area to keep shared and private declarations apart.
    guard_bytes_front_ = page_size_;
    guard_bytes_back_ = page_size_;
  }
  storage_bytes_ = usable_bytes_ + guard_bytes_front_ + guard_bytes_back_ +
                   page_size_;  // headroom so the usable base can be aligned
  storage_ = std::make_unique<std::byte[]>(storage_bytes_);
  padding_bytes_ = guard_bytes_front_ + guard_bytes_back_;
  if (guard_bytes_front_ != 0) {
    std::memset(usable_base() - guard_bytes_front_,
                static_cast<int>(kGuardFill), guard_bytes_front_);
  }
  if (guard_bytes_back_ != 0) {
    std::memset(usable_base() + usable_bytes_, static_cast<int>(kGuardFill),
                guard_bytes_back_);
  }
}

std::byte* SharedArena::usable_base() {
  // The usable region always begins on a page boundary: the Alliant
  // requires it, the Encore's page arithmetic assumes it, and it makes
  // every allocation's alignment guarantee independent of where new[]
  // happened to place the backing storage.
  const auto addr = round_up(reinterpret_cast<std::uintptr_t>(storage_.get()) +
                                 guard_bytes_front_,
                             page_size_);
  return reinterpret_cast<std::byte*>(addr);
}

const std::byte* SharedArena::usable_base() const {
  return const_cast<SharedArena*>(this)->usable_base();
}

void SharedArena::declare_locked(const std::string& name, std::size_t bytes,
                                 std::size_t align, VarClass cls) {
  FORCE_CHECK(!linked_, "declare after link(): the Sequent protocol "
                        "collects all shared names in the first run");
  // Fortran COMMON semantics: several modules may declare the same shared
  // block; identical shapes resolve to one storage, mismatches are the
  // link error a 1989 loader would give.
  if (auto it = allocations_.find(name); it != allocations_.end()) {
    FORCE_CHECK(it->second.bytes == bytes && it->second.cls == cls,
                "shared name re-declared with a different shape: " + name);
    return;
  }
  Allocation a;
  a.bytes = bytes;
  a.align = align;
  a.cls = cls;
  if (strategy_ == SharingStrategy::kLinkTime) {
    a.placed = false;  // placement deferred to link()
  } else {
    a.offset = place(bytes, align);
    a.placed = true;
  }
  allocations_[name] = a;
}

void SharedArena::declare(const std::string& name, std::size_t bytes,
                          std::size_t align, VarClass cls) {
  std::lock_guard<std::mutex> g(mutex_);
  declare_locked(name, bytes, align, cls);
}

void SharedArena::link() {
  std::lock_guard<std::mutex> g(mutex_);
  FORCE_CHECK(strategy_ == SharingStrategy::kLinkTime,
              "link() is only part of the link-time sharing protocol");
  FORCE_CHECK(!linked_, "link() called twice");
  for (auto& [name, a] : allocations_) {
    if (!a.placed) {
      a.offset = place(a.bytes, a.align);
      a.placed = true;
    }
  }
  linked_ = true;
}

void* SharedArena::allocate_locked(const std::string& name, std::size_t bytes,
                                   std::size_t align, VarClass cls,
                                   bool* created) {
  if (created != nullptr) *created = false;
  auto it = allocations_.find(name);
  if (it != allocations_.end()) {
    Allocation& a = it->second;
    FORCE_CHECK(a.placed, "name declared but not linked yet: " + name);
    FORCE_CHECK(a.bytes >= bytes && a.cls == cls,
                "allocation mismatch for shared name " + name);
    return usable_base() + a.offset;
  }
  if (strategy_ == SharingStrategy::kLinkTime) {
    // The Sequent port would fail to link a shared variable that no
    // startup routine declared; allow late declaration only pre-link.
    FORCE_CHECK(!linked_,
                "shared name not declared before link(): " + name +
                    " (the Sequent port would fail to link this variable)");
  }
  Allocation a;
  a.bytes = bytes;
  a.align = align;
  a.cls = cls;
  a.offset = place(bytes, align);
  a.placed = true;
  allocations_[name] = a;
  if (created != nullptr) *created = true;
  return usable_base() + a.offset;
}

void* SharedArena::allocate(const std::string& name, std::size_t bytes,
                            std::size_t align, VarClass cls) {
  std::lock_guard<std::mutex> g(mutex_);
  return allocate_locked(name, bytes, align, cls, nullptr);
}

void* SharedArena::allocate_once(const std::string& name, std::size_t bytes,
                                 std::size_t align, VarClass cls,
                                 const std::function<void(void*)>& init) {
  std::lock_guard<std::mutex> g(mutex_);
  bool created = false;
  void* p = allocate_locked(name, bytes, align, cls, &created);
  if (created && init) init(p);
  return p;
}

void* SharedArena::resolve(const std::string& name) const {
  std::lock_guard<std::mutex> g(mutex_);
  auto it = allocations_.find(name);
  FORCE_CHECK(it != allocations_.end(), "unknown shared name " + name);
  FORCE_CHECK(it->second.placed, "shared name not yet linked: " + name);
  return const_cast<std::byte*>(usable_base()) + it->second.offset;
}

bool SharedArena::contains_name(const std::string& name) const {
  std::lock_guard<std::mutex> g(mutex_);
  return allocations_.contains(name);
}

std::size_t SharedArena::place(std::size_t bytes, std::size_t align) {
  FORCE_CHECK(bytes > 0, "zero-byte shared allocation");
  std::size_t offset = round_up(cursor_, align);
  // Encore rule: a shared variable no larger than a page must lie within a
  // single shared page; bump it to the next page if it would straddle one.
  if (bytes <= page_size_) {
    const std::size_t page_begin = offset / page_size_;
    const std::size_t page_end = (offset + bytes - 1) / page_size_;
    if (page_begin != page_end) {
      const std::size_t bumped = round_up(offset, page_size_);
      padding_bytes_ += bumped - offset;
      offset = bumped;
    }
  }
  FORCE_CHECK(offset + bytes <= usable_bytes_,
              "shared arena exhausted; enlarge ForceConfig::arena_bytes");
  padding_bytes_ += offset - cursor_;
  cursor_ = offset + bytes;
  return offset;
}

bool SharedArena::is_shared_address(const void* p) const {
  const auto* b = static_cast<const std::byte*>(p);
  const std::byte* base = usable_base();
  return b >= base && b < base + usable_bytes_;
}

std::size_t SharedArena::pages() const { return usable_bytes_ / page_size_; }

std::size_t SharedArena::page_of(const void* p) const {
  FORCE_CHECK(is_shared_address(p), "address not in the shared arena");
  return static_cast<std::size_t>(static_cast<const std::byte*>(p) -
                                  usable_base()) /
         page_size_;
}

bool SharedArena::guards_intact() const {
  const std::byte* front = usable_base() - guard_bytes_front_;
  for (std::size_t i = 0; i < guard_bytes_front_; ++i) {
    if (front[i] != kGuardFill) return false;
  }
  const std::byte* back = usable_base() + usable_bytes_;
  for (std::size_t i = 0; i < guard_bytes_back_; ++i) {
    if (back[i] != kGuardFill) return false;
  }
  return true;
}

void SharedArena::corrupt_guard_for_test() {
  FORCE_CHECK(guard_bytes_front_ > 0, "no guard pages in this strategy");
  *(usable_base() - 1) = std::byte{0x00};
}

void SharedArena::for_each_allocation(
    const std::function<void(const std::string&, void*, std::size_t)>& fn)
    const {
  std::lock_guard<std::mutex> g(mutex_);
  auto* self = const_cast<SharedArena*>(this);
  for (const auto& [name, alloc] : allocations_) {
    if (!alloc.placed) continue;
    fn(name, self->usable_base() + alloc.offset, alloc.bytes);
  }
}

// ---------------------------------------------------------------------------
// PrivateSpace
// ---------------------------------------------------------------------------

PrivateSpace::PrivateSpace(std::size_t data_bytes, std::size_t stack_bytes) {
  data_.capacity = data_bytes;
  data_.parent = std::make_unique<std::byte[]>(data_bytes);
  std::memset(data_.parent.get(), 0, data_bytes);
  stack_.capacity = stack_bytes;
  stack_.parent = std::make_unique<std::byte[]>(stack_bytes);
  std::memset(stack_.parent.get(), 0, stack_bytes);
}

std::size_t PrivateSpace::register_slot(Region region, std::size_t bytes,
                                        std::size_t align) {
  FORCE_CHECK(!materialized_, "register_slot after materialize()");
  RegionState& r = state(region);
  const std::size_t offset = round_up(r.cursor, align);
  FORCE_CHECK(offset + bytes <= r.capacity, "private space exhausted");
  r.cursor = offset + bytes;
  return offset;
}

void* PrivateSpace::parent_ptr(Region region, std::size_t offset) {
  RegionState& r = state(region);
  FORCE_CHECK(offset < r.capacity, "private offset out of range");
  return r.parent.get() + offset;
}

void PrivateSpace::materialize(int nproc, InitMode mode) {
  FORCE_CHECK(!materialized_, "materialize() called twice");
  FORCE_CHECK(nproc > 0, "need at least one process");
  nproc_ = nproc;
  bytes_copied_ = 0;

  auto make_copies = [&](RegionState& r, bool copy_from_parent) {
    r.per_process.resize(static_cast<std::size_t>(nproc));
    for (auto& seg : r.per_process) {
      seg = std::make_unique<std::byte[]>(r.capacity);
      if (copy_from_parent) {
        std::memcpy(seg.get(), r.parent.get(), r.capacity);
        bytes_copied_ += r.capacity;
      } else {
        std::memset(seg.get(), 0, r.capacity);
      }
    }
    r.aliased_to_parent = false;
  };

  switch (mode) {
    case InitMode::kCopyBoth:
      // Unix fork: "a complete copy of the data and stack is produced for
      // each forked process" (paper §4.1.1).
      make_copies(data_, /*copy_from_parent=*/true);
      make_copies(stack_, /*copy_from_parent=*/true);
      break;
    case InitMode::kShareDataCopyStack:
      // Alliant: data segments shared, only the stack is private.
      data_.per_process.clear();
      data_.aliased_to_parent = true;
      make_copies(stack_, /*copy_from_parent=*/true);
      break;
    case InitMode::kZeroBoth:
      // HEP: a created process starts a fresh subroutine activation.
      make_copies(data_, /*copy_from_parent=*/false);
      make_copies(stack_, /*copy_from_parent=*/false);
      break;
  }
  materialized_ = true;
}

void* PrivateSpace::ptr(int proc, Region region, std::size_t offset) {
  FORCE_CHECK(materialized_, "ptr() before materialize()");
  FORCE_CHECK(proc >= 0 && proc < nproc_, "process id out of range");
  RegionState& r = state(region);
  FORCE_CHECK(offset < r.capacity, "private offset out of range");
  if (r.aliased_to_parent) return r.parent.get() + offset;
  return r.per_process[static_cast<std::size_t>(proc)].get() + offset;
}

}  // namespace force::machdep
