// Deterministic per-machine cost model.
//
// The paper's evaluation compares behaviour across six real machines. This
// reproduction runs inside one container, where wall-clock comparisons of
// "HEP vs Cray-2" are obviously meaningless, so every bench reports both
// wall time *and* a deterministic simulated time: instrumented counters
// (lock operations, bytes copied, work executed) multiplied by per-machine
// cost parameters calibrated to the qualitative 1989 characteristics the
// paper describes (HEP: near-free synchronization via tagged memory;
// Cray-2: blazing CPU, expensive system-call locks; Sequent/Encore: cheap
// spin locks, very expensive fork; Alliant: cheaper creation because only
// the stack is copied; Flex/32: combined locks).
//
// The model also contains a small list-scheduling simulator used by the
// DOALL experiments so that self/prescheduling comparisons have exact,
// reproducible shapes independent of host scheduling noise.
#pragma once

#include <cstdint>
#include <vector>

#include "machdep/locks.hpp"

namespace force::machdep {

/// Cost parameters in nanoseconds of simulated machine time.
struct CostParameters {
  double lock_uncontended_ns = 100;   ///< acquire+release, no contention
  double lock_contended_extra_ns = 300;  ///< extra cost of a contended pass
  double spin_probe_ns = 20;          ///< one spin probe (coherence traffic)
  double blocking_wait_ns = 5000;     ///< park+wake through the scheduler
  double barrier_episode_ns = 500;    ///< fixed cost per barrier episode
  double process_create_ns = 100000;  ///< fixed creation cost per process
  double copy_byte_ns = 1.0;          ///< fork-copy cost per private byte
  double produce_consume_ns = 400;    ///< one produce or consume
  double work_scale = 1.0;            ///< CPU speed: simulated ns per
                                      ///< nominal ns of computational work
};

class CostModel {
 public:
  explicit CostModel(const CostParameters& p) : p_(p) {}

  [[nodiscard]] const CostParameters& params() const { return p_; }

  /// Simulated time for the lock traffic in a counter delta.
  [[nodiscard]] double lock_time_ns(const LockCountersSnapshot& d) const;

  /// Simulated cost of creating a force of `nproc` processes that copies
  /// `bytes_copied` of private memory in total.
  [[nodiscard]] double creation_time_ns(int nproc,
                                        std::size_t bytes_copied) const;

  /// Simulated time for `nominal_ns` of computational work on this CPU.
  [[nodiscard]] double work_time_ns(double nominal_ns) const;

  /// Simulated time for n produce/consume operations.
  [[nodiscard]] double produce_consume_time_ns(std::uint64_t ops) const;

  // --- scheduling simulator (used by bench E3/E6/E8) ----------------------

  /// Prescheduled DOALL: iteration i runs on process i % nproc; returns the
  /// simulated makespan (slowest process) including one barrier episode.
  [[nodiscard]] double presched_makespan_ns(
      const std::vector<double>& iter_work_ns, int nproc) const;

  /// Selfscheduled DOALL: greedy list scheduling in iteration order, with a
  /// serialized critical section of `dispatch_ns` per iteration dispatch
  /// (the shared-loop-index update). Returns the simulated makespan.
  [[nodiscard]] double selfsched_makespan_ns(
      const std::vector<double>& iter_work_ns, int nproc,
      double dispatch_ns) const;

  /// Chunked selfscheduling: like selfsched but `chunk` iterations are
  /// claimed per dispatch, amortizing the critical section.
  [[nodiscard]] double chunked_makespan_ns(
      const std::vector<double>& iter_work_ns, int nproc, double dispatch_ns,
      std::size_t chunk) const;

  /// Default dispatch cost: one uncontended lock pass.
  [[nodiscard]] double default_dispatch_ns() const {
    return p_.lock_uncontended_ns;
  }

 private:
  CostParameters p_;
};

}  // namespace force::machdep
