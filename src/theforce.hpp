// Umbrella header for the Force library.
//
// A C++20 reproduction of "The Force: A Highly Portable Parallel
// Programming Language" (Jordan, Benten, Alaghband, Jakob; ICPP 1989).
// See README.md for the architecture and DESIGN.md for the paper mapping.
#pragma once

#include "core/algorithms.hpp"  // IWYU pragma: export
#include "core/askfor.hpp"    // IWYU pragma: export
#include "core/async.hpp"     // IWYU pragma: export
#include "core/barrier.hpp"   // IWYU pragma: export
#include "core/critical.hpp"  // IWYU pragma: export
#include "core/doall.hpp"     // IWYU pragma: export
#include "core/env.hpp"       // IWYU pragma: export
#include "core/force.hpp"     // IWYU pragma: export
#include "core/module.hpp"    // IWYU pragma: export
#include "core/pcase.hpp"     // IWYU pragma: export
#include "core/privatevar.hpp"  // IWYU pragma: export
#include "core/resolve.hpp"   // IWYU pragma: export
#include "core/site.hpp"      // IWYU pragma: export
#include "machdep/machine.hpp"  // IWYU pragma: export
