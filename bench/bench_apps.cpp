// E12 - Production-shaped application workloads with regression gates.
//
// The conformance programs are microbenchmarks; the ROADMAP's production
// claims need workloads shaped like real traffic. Three application
// kernels ported to the Force:
//
//   * cmfd     - a CMFD-style 2D mesh sweep (modeled on OpenMOC's
//                coarse-mesh finite-difference acceleration): nested mesh
//                loops computing per-surface currents, a max-residual
//                Reduce, and an outer power-iteration convergence loop
//                with barrier-section eigenvalue folds. Stresses DOALL +
//                Reduce + barrier at scale.
//   * tree     - an HVM-style irregular tree reduction: an implicit tree
//                whose shape is only discovered by hashing node ids, so
//                the work distribution is decided entirely by Askfor
//                stealing. Stresses dynamic work generation.
//   * pipeline - a streaming workload over Produce/Consume async cells:
//                items flow through every process with a bounded ring of
//                cells per stage link. Stresses async-variable coupling.
//
// Every workload is verified against a sequential oracle BEFORE it is
// timed - a wrong answer is a bench failure (exit 1), not a fast run.
// Results are bit-identical by construction: per-cell/per-node values are
// computed by the same inlined helpers in both paths, reductions are
// either exact (max, wrapping integer sums) or serialized in index order
// inside a barrier section, and every shared write has a single
// deterministic writer. See docs/VALIDATION.md (workload suite).
//
// Each workload runs under three team configurations - native threads
// respawned per force, a persistent thread pool, and real fork(2)
// children (os-fork) - and emits one row per (workload, model, mode) into
// BENCH_apps.json. The gated metric is rel_throughput: parallel
// throughput relative to the sequential oracle measured back to back on
// the same host, so the CI gate (tools/bench_gate.py) is host-relative
// and does not trip on absolute machine speed.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "util/cli.hpp"

namespace {

namespace fb = force::bench;
using force::bench::ns_cell;

// --- shared arithmetic helpers (identical in oracle and parallel paths) ---

/// splitmix64: the hash that drives tree shape, node work, and stream
/// payloads. Wrapping arithmetic only, so every sum below is exact.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// --- workload 1: CMFD-style mesh sweep ------------------------------------

/// Fixed row stride: supports interior meshes up to kCmfdMax-2 square.
constexpr int kCmfdMax = 50;

/// All shared state of one CMFD solve, as a single trivially-copyable
/// blob so the os-fork backend can place it in the MAP_SHARED arena.
/// Cell (i,j) lives at [i*kCmfdMax + j]; the boundary ring (i or j equal
/// to 0 or nx+1) stays zero (zero-flux boundary).
struct CmfdState {
  std::array<double, kCmfdMax * kCmfdMax> flux;
  std::array<double, kCmfdMax * kCmfdMax> next;
  /// East-face net currents: surfx[i*kCmfdMax+j] is the current across
  /// the surface between cell (i,j) and (i,j+1). Single writer: row i's
  /// sweep owner.
  std::array<double, kCmfdMax * kCmfdMax> surfx;
  /// North-face net currents: surfy[i*kCmfdMax+j] between (i,j) and
  /// (i+1,j). Row i writes its own faces; row 1 also writes the i=0
  /// boundary faces.
  std::array<double, kCmfdMax * kCmfdMax> surfy;
  double keff;
  double fiss_old;
  double resid;
  double leakage;
  std::int64_t iters;
  std::int64_t done;
};

/// Two-region checkerboard cross sections (fuel / moderator).
inline double cmfd_nu_sig_f(int i, int j) {
  return ((i + j) & 1) ? 0.70 : 0.30;
}
inline double cmfd_sig_r(int i, int j) {
  return ((i + j) & 1) ? 0.54 : 0.48;
}
constexpr double kCmfdD = 1.0;  // diffusion coefficient / surface D-hat

inline void cmfd_init(CmfdState& s, int n) {
  s.flux.fill(0.0);
  s.next.fill(0.0);
  s.surfx.fill(0.0);
  s.surfy.fill(0.0);
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= n; ++j) s.flux[i * kCmfdMax + j] = 1.0;
  }
  s.keff = 1.0;
  s.fiss_old = 0.0;
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= n; ++j) {
      s.fiss_old += cmfd_nu_sig_f(i, j) * s.flux[i * kCmfdMax + j];
    }
  }
  s.resid = 0.0;
  s.leakage = 0.0;
  s.iters = 0;
  s.done = 0;
}

/// One row of the diffusion sweep: new flux from the four neighbour
/// currents plus the fission source scaled by the current eigenvalue,
/// and the row's surface currents. Returns the row's max flux change.
/// Reads flux (stable during the sweep), writes next/surfx/surfy entries
/// owned by this row only - deterministic regardless of which process
/// claims the row.
inline double cmfd_sweep_row(CmfdState& s, int n, int i) {
  double rowmax = 0.0;
  const int base = i * kCmfdMax;
  for (int j = 1; j <= n; ++j) {
    const double nbr = s.flux[base - kCmfdMax + j] +
                       s.flux[base + kCmfdMax + j] + s.flux[base + j - 1] +
                       s.flux[base + j + 1];
    const double src = cmfd_nu_sig_f(i, j) * s.flux[base + j] / s.keff;
    const double updated = (src + kCmfdD * nbr) / (4.0 * kCmfdD + cmfd_sig_r(i, j));
    s.next[base + j] = updated;
    const double d = std::fabs(updated - s.flux[base + j]);
    if (d > rowmax) rowmax = d;
  }
  // Surface currents from the pre-sweep flux: east faces j=0..n (face j
  // sits between cell j and j+1), north faces for this row, and - for
  // row 1 only - the south boundary faces at i=0.
  for (int j = 0; j <= n; ++j) {
    s.surfx[base + j] = -kCmfdD * (s.flux[base + j + 1] - s.flux[base + j]);
  }
  for (int j = 1; j <= n; ++j) {
    s.surfy[base + j] = -kCmfdD * (s.flux[base + kCmfdMax + j] - s.flux[base + j]);
    if (i == 1) s.surfy[j] = -kCmfdD * (s.flux[kCmfdMax + j] - s.flux[j]);
  }
  return rowmax;
}

/// The eigenvalue fold, executed by exactly one process per iteration
/// (the barrier section / the oracle): new fission source and boundary
/// leakage summed in index order (deterministic), k-eff power update,
/// convergence test. s.resid must already hold the global max residual.
inline void cmfd_fold(CmfdState& s, int n, double tol) {
  double fiss_new = 0.0;
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= n; ++j) {
      fiss_new += cmfd_nu_sig_f(i, j) * s.next[i * kCmfdMax + j];
    }
  }
  double leak = 0.0;
  for (int i = 1; i <= n; ++i) {
    leak += s.surfx[i * kCmfdMax + n] - s.surfx[i * kCmfdMax];
  }
  for (int j = 1; j <= n; ++j) {
    leak += s.surfy[n * kCmfdMax + j] - s.surfy[j];
  }
  s.leakage = leak;
  s.keff = s.keff * fiss_new / s.fiss_old;
  s.fiss_old = fiss_new;
  s.iters += 1;
  if (s.resid < tol) s.done = 1;
}

inline void cmfd_copy_row(CmfdState& s, int n, int i) {
  for (int j = 1; j <= n; ++j) {
    s.flux[i * kCmfdMax + j] = s.next[i * kCmfdMax + j];
  }
}

/// Sequential oracle: the same helpers, serially.
inline void cmfd_oracle(CmfdState& s, int n, double tol, int max_iters) {
  cmfd_init(s, n);
  while (s.done == 0 && s.iters < max_iters) {
    double resid = 0.0;
    for (int i = 1; i <= n; ++i) resid = std::max(resid, cmfd_sweep_row(s, n, i));
    s.resid = resid;
    cmfd_fold(s, n, tol);
    for (int i = 1; i <= n; ++i) cmfd_copy_row(s, n, i);
  }
}

/// The parallel solve body, run by every process of the force.
inline void cmfd_parallel(force::Ctx& ctx, CmfdState& s, int n, double tol,
                          int max_iters) {
  while (true) {
    double localmax = 0.0;
    ctx.selfsched_do(FORCE_SITE, 1, n, 1, [&](std::int64_t i) {
      localmax = std::max(localmax, cmfd_sweep_row(s, n, static_cast<int>(i)));
    });
    // Exact (max is order-independent), and doubles as the sweep join:
    // every process has finished its rows once the reduction returns.
    ctx.reduce_into<double>(FORCE_SITE, localmax, s.resid,
                            [](double a, double b) { return std::max(a, b); });
    ctx.barrier([&] { cmfd_fold(s, n, tol); });
    ctx.presched_do(1, n, 1,
                    [&](std::int64_t i) { cmfd_copy_row(s, n, static_cast<int>(i)); });
    ctx.barrier();
    if (s.done != 0 || s.iters >= max_iters) break;
  }
}

// --- workload 2: HVM-style irregular tree reduction -----------------------

/// Implicit-tree node ids: the root is 1, children of id are 2*id and
/// 2*id+1, so depth(id) = bit_width(id)-1. The tree is full binary down
/// to full_depth, then decays into hash-decided chains (irregular tails
/// whose shape no static schedule can predict - the Askfor monitor's
/// stealing has to discover them).
inline int tree_depth(std::uint64_t id) {
  int d = -1;
  while (id != 0) {
    id >>= 1;
    ++d;
  }
  return d;
}

inline int tree_children(std::uint64_t id, int full_depth, int max_depth) {
  const int d = tree_depth(id);
  if (d < full_depth) return 2;
  if (d < max_depth && (mix64(id) & 1ull) != 0) return 1;
  return 0;
}

/// Per-node work: `rounds` dependent hash applications (pointer-chasing
/// style - each round's input is the previous round's output).
inline std::uint64_t tree_node_value(std::uint64_t id, int rounds) {
  std::uint64_t h = id;
  for (int r = 0; r < rounds; ++r) h = mix64(h);
  return h;
}

struct TreeShared {
  std::uint64_t sum;
  std::int64_t nodes;
};

struct TreeResult {
  std::uint64_t sum = 0;
  std::int64_t nodes = 0;
};

inline TreeResult tree_oracle(int full_depth, int max_depth, int rounds) {
  TreeResult r;
  std::vector<std::uint64_t> stack{1};
  while (!stack.empty()) {
    const std::uint64_t id = stack.back();
    stack.pop_back();
    r.sum += tree_node_value(id, rounds);
    r.nodes += 1;
    const int kids = tree_children(id, full_depth, max_depth);
    if (kids >= 1) stack.push_back(2 * id);
    if (kids == 2) stack.push_back(2 * id + 1);
  }
  return r;
}

inline void tree_parallel(force::Ctx& ctx, TreeShared& s, int full_depth,
                          int max_depth, int rounds) {
  auto& af = ctx.askfor<std::uint64_t>(FORCE_SITE);
  if (ctx.leader()) {
    s.sum = 0;
    s.nodes = 0;
    af.put(1);
  }
  ctx.barrier();
  std::uint64_t local_sum = 0;
  std::int64_t local_nodes = 0;
  af.work([&](std::uint64_t& id, force::core::Askfor<std::uint64_t>& a) {
    local_sum += tree_node_value(id, rounds);
    local_nodes += 1;
    const int kids = tree_children(id, full_depth, max_depth);
    if (kids >= 1) a.put(2 * id);
    if (kids == 2) a.put(2 * id + 1);
  });
  // Wrapping integer sums: exact under any combine order.
  ctx.reduce_into<std::uint64_t>(
      FORCE_SITE, local_sum, s.sum,
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  ctx.reduce_into<std::int64_t>(
      FORCE_SITE, local_nodes, s.nodes,
      [](std::int64_t a, std::int64_t b) { return a + b; });
  ctx.barrier();
}

// --- workload 3: streaming pipeline over async cells ----------------------

/// Stage transform: hash-mix the value with the stage number.
inline std::uint64_t pipe_stage(std::uint64_t v, int stage) {
  return mix64(v ^ (static_cast<std::uint64_t>(stage) << 32));
}

/// Ring depth per stage link: producers may run this many items ahead
/// before a full cell blocks them (the bounded-buffer pushback that makes
/// this a pipeline rather than a batch job).
constexpr std::int64_t kPipeRing = 4;

struct PipeShared {
  std::uint64_t sink;
  std::int64_t delivered;
};

inline std::uint64_t pipe_oracle(std::int64_t items, int stages) {
  std::uint64_t acc = 0;
  for (std::int64_t i = 0; i < items; ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(i);
    for (int p = 1; p <= stages; ++p) v = pipe_stage(v, p);
    acc += v;
  }
  return acc;
}

inline void pipe_parallel(force::Ctx& ctx, PipeShared& s, std::int64_t items) {
  const int np = ctx.np();
  const int me = ctx.me();
  // Link L (0-based, between stage L+1 and L+2) owns cells
  // [L*kPipeRing, (L+1)*kPipeRing); item i travels in slot i % kPipeRing.
  auto& cells = ctx.async_array<std::uint64_t>(
      FORCE_SITE, static_cast<std::size_t>(np - 1) * kPipeRing);
  std::uint64_t acc = 0;
  for (std::int64_t i = 0; i < items; ++i) {
    std::uint64_t v;
    if (me == 1) {
      v = static_cast<std::uint64_t>(i);
    } else {
      v = cells[static_cast<std::size_t>((me - 2) * kPipeRing + i % kPipeRing)]
              .consume();
    }
    v = pipe_stage(v, me);
    if (me == np) {
      acc += v;
    } else {
      cells[static_cast<std::size_t>((me - 1) * kPipeRing + i % kPipeRing)]
          .produce(v);
    }
  }
  if (me == np) {
    ctx.critical(FORCE_SITE, [&] {
      s.sink = acc;
      s.delivered = items;
    });
  }
  ctx.barrier();
}

// --- harness --------------------------------------------------------------

struct ConfigSpec {
  const char* model;  ///< "thread" or "os-fork"
  const char* mode;   ///< "respawn" or "pooled"
  force::ForceConfig cfg;
};

std::vector<ConfigSpec> team_configs(int np) {
  std::vector<ConfigSpec> specs;
  {
    force::ForceConfig cfg;
    cfg.nproc = np;
    specs.push_back({"thread", "respawn", cfg});
  }
  {
    force::ForceConfig cfg;
    cfg.nproc = np;
    cfg.team_pool = true;
    specs.push_back({"thread", "pooled", cfg});
  }
  {
    force::ForceConfig cfg;
    cfg.nproc = np;
    cfg.process_model = "os-fork";
    specs.push_back({"os-fork", "respawn", cfg});
  }
  return specs;
}

struct AppRow {
  std::string workload;
  std::string model;
  std::string mode;
  std::int64_t items;
  std::int64_t iterations;
  double wall_ns;       // best-of-reps, one repetition
  double rel_throughput;  // vs the sequential oracle on this host
};

bool g_verify_failed = false;

void report_mismatch(const std::string& workload, const std::string& where,
                     const std::string& detail) {
  std::fprintf(stderr,
               "VERIFICATION FAILED: %s under %s disagrees with the "
               "sequential oracle (%s) - refusing to time a wrong answer\n",
               workload.c_str(), where.c_str(), detail.c_str());
  g_verify_failed = true;
}

}  // namespace

/// Best-of-`reps` wall time for one repetition of `fn`. On a shared host
/// scheduler preemption only ever adds time, so the minimum is the stable
/// estimator - and both sides of the rel_throughput ratio use it, keeping
/// the gated metric comparable run to run.
double best_of(int reps, const std::function<void()>& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double t = fb::time_ns(fn);
    if (r == 0 || t < best) best = t;
  }
  return best;
}

int main(int argc, char** argv) {
  force::util::CliParser cli;
  cli.option("np", "4", "force size (pipeline depth equals np)")
      .option("reps", "0", "timed repetitions per configuration (0 = auto)")
      .option("json", "BENCH_apps.json",
              "write per-workload records here ('' to skip)")
      .flag("quick", "CI smoke mode: small meshes/trees/streams");
  if (!cli.parse(argc, argv)) return 0;
  const int np = std::max(2, static_cast<int>(cli.get_int("np")));
  const bool quick = cli.get_flag("quick");
  const int reps = cli.get_int("reps") > 0
                       ? static_cast<int>(cli.get_int("reps"))
                       : (quick ? 5 : 7);

  // Workload sizes. The tree's frontier stays well under the os-fork
  // askfor ring capacity (4096): the widest level is 2^(full_depth-1)
  // plus the hash-decided tails.
  const int cmfd_n = quick ? 24 : 48;
  const double cmfd_tol = 1e-4;
  const int cmfd_cap = quick ? 400 : 600;
  const int tree_full_depth = quick ? 9 : 11;
  const int tree_max_depth = tree_full_depth + 6;
  const int tree_rounds = quick ? 16 : 48;
  const std::int64_t pipe_items = quick ? 2000 : 20000;

  fb::print_header(
      "E12  Production-shaped application workloads",
      "CMFD mesh sweep (DOALL+Reduce+barrier), irregular tree reduction "
      "(Askfor stealing), streaming pipeline (Produce/Consume) - each "
      "verified bit-identically against a sequential oracle before timing, "
      "under native, pooled and os-fork teams.");

  std::vector<AppRow> rows;

  // --- cmfd ---------------------------------------------------------------
  {
    auto oracle = std::make_unique<CmfdState>();
    cmfd_oracle(*oracle, cmfd_n, cmfd_tol, cmfd_cap);
    auto scratch = std::make_unique<CmfdState>();
    const double oracle_ns = best_of(reps, [&] {
      cmfd_oracle(*scratch, cmfd_n, cmfd_tol, cmfd_cap);
      // Consume the result so the solve cannot be optimized away (and the
      // oracle itself must be run-to-run stable).
      if (std::memcmp(&scratch->keff, &oracle->keff, sizeof(double)) != 0) {
        std::abort();
      }
    });
    const std::int64_t cells =
        static_cast<std::int64_t>(cmfd_n) * cmfd_n * oracle->iters;
    std::printf("cmfd: %dx%d mesh, %lld iterations to converge, k-eff %.6f, "
                "leakage %.4f (oracle %s/solve)\n",
                cmfd_n, cmfd_n, static_cast<long long>(oracle->iters),
                oracle->keff, oracle->leakage, ns_cell(oracle_ns).c_str());

    for (const auto& spec : team_configs(np)) {
      force::Force f(spec.cfg);
      auto& s = f.shared<CmfdState>("cmfd_state");
      const auto solve = [&](force::Ctx& ctx) {
        cmfd_parallel(ctx, s, cmfd_n, cmfd_tol, cmfd_cap);
      };
      // Verify before timing: one full solve, compared bit-identically.
      cmfd_init(s, cmfd_n);
      f.run(solve);
      if (std::memcmp(s.flux.data(), oracle->flux.data(),
                      sizeof oracle->flux) != 0 ||
          s.iters != oracle->iters ||
          std::memcmp(&s.keff, &oracle->keff, sizeof(double)) != 0 ||
          std::memcmp(&s.leakage, &oracle->leakage, sizeof(double)) != 0) {
        report_mismatch("cmfd", std::string(spec.model) + "/" + spec.mode,
                        "flux/iters/keff/leakage");
        continue;
      }
      double best = 0.0;
      for (int r = 0; r < reps; ++r) {
        cmfd_init(s, cmfd_n);  // reset outside the timed region
        const double t = fb::time_ns([&] { f.run(solve); });
        if (r == 0 || t < best) best = t;
      }
      if (s.iters != oracle->iters) {
        report_mismatch("cmfd", std::string(spec.model) + "/" + spec.mode,
                        "post-timing iteration count drifted");
        continue;
      }
      rows.push_back({"cmfd", spec.model, spec.mode, cells, oracle->iters,
                      best, oracle_ns / best});
    }
  }

  // --- tree ---------------------------------------------------------------
  {
    const TreeResult oracle =
        tree_oracle(tree_full_depth, tree_max_depth, tree_rounds);
    const double oracle_ns = best_of(reps, [&] {
      const TreeResult check =
          tree_oracle(tree_full_depth, tree_max_depth, tree_rounds);
      if (check.sum != oracle.sum) std::abort();  // oracle must be stable
    });
    std::printf("tree: %lld nodes (full to depth %d, hash tails to %d), "
                "oracle %s/walk\n",
                static_cast<long long>(oracle.nodes), tree_full_depth,
                tree_max_depth, ns_cell(oracle_ns).c_str());

    for (const auto& spec : team_configs(np)) {
      force::Force f(spec.cfg);
      auto& s = f.shared<TreeShared>("tree_totals");
      const auto walk = [&](force::Ctx& ctx) {
        tree_parallel(ctx, s, tree_full_depth, tree_max_depth, tree_rounds);
      };
      f.run(walk);
      if (s.sum != oracle.sum || s.nodes != oracle.nodes) {
        report_mismatch("tree", std::string(spec.model) + "/" + spec.mode,
                        "sum/node-count");
        continue;
      }
      const double best = best_of(reps, [&] { f.run(walk); });
      if (s.sum != oracle.sum || s.nodes != oracle.nodes) {
        report_mismatch("tree", std::string(spec.model) + "/" + spec.mode,
                        "post-timing sum drifted");
        continue;
      }
      rows.push_back({"tree", spec.model, spec.mode, oracle.nodes, 1, best,
                      oracle_ns / best});
    }
  }

  // --- pipeline -----------------------------------------------------------
  {
    const std::uint64_t oracle = pipe_oracle(pipe_items, np);
    const double oracle_ns = best_of(reps, [&] {
      if (pipe_oracle(pipe_items, np) != oracle) std::abort();
    });
    std::printf("pipeline: %lld items through %d stages (ring depth %lld), "
                "oracle %s/stream\n",
                static_cast<long long>(pipe_items), np,
                static_cast<long long>(kPipeRing), ns_cell(oracle_ns).c_str());

    for (const auto& spec : team_configs(np)) {
      force::Force f(spec.cfg);
      auto& s = f.shared<PipeShared>("pipe_sink");
      const auto stream = [&](force::Ctx& ctx) {
        pipe_parallel(ctx, s, pipe_items);
      };
      s.sink = 0;
      s.delivered = 0;
      f.run(stream);
      if (s.sink != oracle || s.delivered != pipe_items) {
        report_mismatch("pipeline", std::string(spec.model) + "/" + spec.mode,
                        "sink checksum/delivery count");
        continue;
      }
      double best = 0.0;
      for (int r = 0; r < reps; ++r) {
        s.sink = 0;  // reset outside the timed region
        s.delivered = 0;
        const double t = fb::time_ns([&] { f.run(stream); });
        if (r == 0 || t < best) best = t;
      }
      if (s.sink != oracle) {
        report_mismatch("pipeline", std::string(spec.model) + "/" + spec.mode,
                        "post-timing checksum drifted");
        continue;
      }
      rows.push_back({"pipeline", spec.model, spec.mode, pipe_items, 1, best,
                      oracle_ns / best});
    }
  }

  force::util::Table table({"workload", "model", "team lifetime", "items",
                            "iters", "best wall", "items/sec",
                            "rel throughput"});
  for (const auto& r : rows) {
    table.add_row(
        {r.workload, r.model, r.mode, force::util::Table::num(r.items),
         force::util::Table::num(r.iterations), ns_cell(r.wall_ns),
         force::util::Table::num(static_cast<double>(r.items) * 1e9 /
                                 r.wall_ns),
         force::util::Table::num(r.rel_throughput)});
  }
  std::printf("\nPer-configuration results (np=%d, %d reps, %s mode):\n\n",
              np, reps, quick ? "quick" : "full");
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nE12 verdict: rel_throughput is parallel throughput over the "
      "sequential oracle on this host - the host-relative number the CI "
      "gate watches. Absolute items/sec rows are the trajectory record.\n");

  const std::string json_path = cli.get("json");
  if (!json_path.empty() && !rows.empty()) {
    std::vector<std::string> meta;
    meta.push_back(fb::json_field("np", fb::json_num(std::uint64_t(np))));
    meta.push_back(
        fb::json_field("reps", fb::json_num(std::uint64_t(reps))));
    meta.push_back(fb::json_field("quick", fb::json_num(std::uint64_t(
                                               quick ? 1 : 0))));
    for (auto& h : fb::host_meta_fields()) meta.push_back(std::move(h));
    std::vector<std::vector<std::string>> json_rows;
    for (const auto& r : rows) {
      json_rows.push_back(
          {fb::json_field("workload", fb::json_str(r.workload)),
           fb::json_field("model", fb::json_str(r.model)),
           fb::json_field("mode", fb::json_str(r.mode)),
           fb::json_field("np", fb::json_num(std::uint64_t(np))),
           fb::json_field("items", fb::json_num(std::uint64_t(r.items))),
           fb::json_field("iterations",
                          fb::json_num(std::uint64_t(r.iterations))),
           fb::json_field("wall_ns", fb::json_num(r.wall_ns)),
           fb::json_field("items_per_sec",
                          fb::json_num(static_cast<double>(r.items) * 1e9 /
                                       r.wall_ns)),
           fb::json_field("ns_per_item",
                          fb::json_num(r.wall_ns /
                                       static_cast<double>(r.items))),
           fb::json_field("rel_throughput",
                          fb::json_num_sig(r.rel_throughput))});
    }
    const std::string json = fb::render_bench_json("apps", meta, json_rows);
    if (fb::write_text_file(json_path, json)) {
      std::printf("Wrote %s\n", json_path.c_str());
    }
  }

  if (g_verify_failed) return 1;
  if (rows.size() != 9) {
    std::fprintf(stderr,
                 "ERROR: expected 9 (workload x configuration) rows, got "
                 "%zu\n",
                 rows.size());
    return 1;
  }
  return 0;
}
