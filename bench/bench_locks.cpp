// E4 - Lock mechanisms (paper §4.1.3).
//
// Claim: the 1989 systems provided three lock families - software spin
// locks (Sequent, Encore), system-call locks (Cray), and combined
// spin-then-block locks (Flex) - and the Force wraps whichever exists.
//
// Reproduction:
//   * google-benchmark micro timings of uncontended acquire/release for
//     every mechanism (the fast-path cost the machine charges every
//     critical section);
//   * a contention sweep (threads x hold time) with counters: spin locks
//     burn probes, system locks park, combined locks switch between the
//     two as the hold time grows - exactly why the Flex lock exists.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "util/cli.hpp"

namespace {

namespace md = force::machdep;
using force::bench::ns_cell;

void BM_UncontendedAcquireRelease(benchmark::State& state) {
  const auto kind = static_cast<md::LockKind>(state.range(0));
  auto lock = md::make_lock(kind, nullptr);
  for (auto _ : state) {
    lock->acquire();
    lock->release();
  }
  state.SetLabel(md::lock_kind_name(kind));
}

void contention_table() {
  force::util::Table table({"mechanism", "threads", "hold", "wall/op",
                            "spin probes/op", "blocking waits/op"});
  constexpr int kOpsPerThread = 400;
  for (md::LockKind kind :
       {md::LockKind::kTasSpin, md::LockKind::kTtasSpin,
        md::LockKind::kTicket, md::LockKind::kMcs, md::LockKind::kSystem,
        md::LockKind::kCombined, md::LockKind::kHepFullEmpty}) {
    for (int threads : {2, 4}) {
      for (std::int64_t hold_ns : {0, 20000}) {
        md::LockCounters counters;
        auto lock = md::make_lock(kind, &counters);
        const double wall = force::bench::time_ns([&] {
          force::bench::on_team(threads, [&](int) {
            for (int i = 0; i < kOpsPerThread; ++i) {
              lock->acquire();
              if (hold_ns > 0) force::util::spin_for_ns(hold_ns);
              lock->release();
            }
          });
        });
        const auto snap = md::snapshot(counters);
        const double ops = static_cast<double>(threads) * kOpsPerThread;
        table.add_row(
            {md::lock_kind_name(kind),
             force::util::Table::num(static_cast<std::int64_t>(threads)),
             hold_ns ? "20us" : "none", ns_cell(wall / ops),
             force::util::Table::num(
                 static_cast<double>(snap.spin_iterations) / ops),
             force::util::Table::num(
                 static_cast<double>(snap.blocking_waits) / ops)});
      }
    }
  }
  std::fputs(table.render().c_str(), stdout);
}

}  // namespace

BENCHMARK(BM_UncontendedAcquireRelease)
    ->DenseRange(0, 6)  // every LockKind
    ->Unit(benchmark::kNanosecond);

int main(int argc, char** argv) {
  force::bench::print_header(
      "E4  Lock mechanisms",
      "Uncontended micro cost (google-benchmark) and behaviour under "
      "contention: spin locks probe, system locks park, combined locks "
      "spin briefly then park (the Flex/32 design point).");

  contention_table();
  std::printf(
      "\nE4 verdict: with long holds the spin mechanisms burn probes while "
      "system/combined park; with no hold the spin mechanisms win the "
      "wall-clock - the trade-off the combined lock straddles.\n\n");

  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
