// Shared helpers for the experiment harnesses (DESIGN.md §5).
//
// Every harness prints:
//   * wall-clock measurements on the host (informative but noisy on a
//     shared 1-CPU container), and
//   * deterministic simulated-machine numbers: instrumented counters
//     multiplied through each machine's CostModel - these carry the
//     paper-shape conclusions and are reproducible.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "theforce.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

namespace force::bench {

/// The six paper machines + native, canonical order.
inline std::vector<std::string> all_machines() {
  return machdep::machine_names();
}

/// Runs `fn(proc)` on `np` plain threads (for machdep-level experiments
/// that bypass the driver).
inline void on_team(int np, const std::function<void(int)>& fn) {
  std::vector<std::jthread> team;
  for (int t = 0; t < np; ++t) team.emplace_back([&fn, t] { fn(t); });
}

/// Formats nanoseconds for table cells.
inline std::string ns_cell(double ns) {
  return util::format_duration_ns(ns);
}

/// Prints a section header so bench output reads like the paper's tables.
inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::printf("\n=== %s ===\n%s\n\n", experiment.c_str(), claim.c_str());
}

/// Wall-clocks one callable.
inline double time_ns(const std::function<void()>& fn) {
  util::WallTimer t;
  t.start();
  fn();
  t.stop();
  return static_cast<double>(t.elapsed_ns());
}

// --- machine-readable artifacts (BENCH_*.json) -----------------------------
//
// The dispatch benches additionally emit a small JSON file so the measured
// throughput per machine model is recorded in the repo, not just scrolled
// past on a terminal. The format is one object with a "results" array of
// flat records; only strings and numbers appear, so a hand-rolled emitter
// is enough (no JSON library in the container).

/// One "key": value JSON field; strings must already be json_str()-quoted.
inline std::string json_field(const std::string& key,
                              const std::string& value) {
  return "\"" + key + "\": " + value;
}

inline std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

inline std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

inline std::string json_num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

inline std::string json_object(const std::vector<std::string>& fields,
                               const std::string& indent = "") {
  std::string out = indent + "{";
  for (std::size_t i = 0; i < fields.size(); ++i) {
    out += (i == 0 ? "" : ", ") + fields[i];
  }
  return out + "}";
}

inline bool write_text_file(const std::string& path,
                            const std::string& text) {
  // Artifact paths may point into a directory that does not exist yet
  // (e.g. a CI upload dir); create it, and say why a write failed.
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "write_text_file: cannot open %s: %s\n",
                 path.c_str(), std::strerror(errno));
    return false;
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != text.size() || !closed) {
    std::fprintf(stderr, "write_text_file: short write to %s: %s\n",
                 path.c_str(), std::strerror(errno));
    return false;
  }
  return true;
}

}  // namespace force::bench
