// Shared helpers for the experiment harnesses (DESIGN.md §5).
//
// Every harness prints:
//   * wall-clock measurements on the host (informative but noisy on a
//     shared 1-CPU container), and
//   * deterministic simulated-machine numbers: instrumented counters
//     multiplied through each machine's CostModel - these carry the
//     paper-shape conclusions and are reproducible.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "theforce.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

namespace force::bench {

/// The six paper machines + native, canonical order.
inline std::vector<std::string> all_machines() {
  return machdep::machine_names();
}

/// Runs `fn(proc)` on `np` plain threads (for machdep-level experiments
/// that bypass the driver).
inline void on_team(int np, const std::function<void(int)>& fn) {
  std::vector<std::jthread> team;
  for (int t = 0; t < np; ++t) team.emplace_back([&fn, t] { fn(t); });
}

/// Formats nanoseconds for table cells.
inline std::string ns_cell(double ns) {
  return util::format_duration_ns(ns);
}

/// Prints a section header so bench output reads like the paper's tables.
inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::printf("\n=== %s ===\n%s\n\n", experiment.c_str(), claim.c_str());
}

/// Wall-clocks one callable.
inline double time_ns(const std::function<void()>& fn) {
  util::WallTimer t;
  t.start();
  fn();
  t.stop();
  return static_cast<double>(t.elapsed_ns());
}

}  // namespace force::bench
