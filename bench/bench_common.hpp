// Shared helpers for the experiment harnesses (DESIGN.md §5).
//
// Every harness prints:
//   * wall-clock measurements on the host (informative but noisy on a
//     shared 1-CPU container), and
//   * deterministic simulated-machine numbers: instrumented counters
//     multiplied through each machine's CostModel - these carry the
//     paper-shape conclusions and are reproducible.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "theforce.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

namespace force::bench {

/// The six paper machines + native, canonical order.
inline std::vector<std::string> all_machines() {
  return machdep::machine_names();
}

/// Runs `fn(proc)` on `np` plain threads (for machdep-level experiments
/// that bypass the driver).
inline void on_team(int np, const std::function<void(int)>& fn) {
  std::vector<std::jthread> team;
  for (int t = 0; t < np; ++t) team.emplace_back([&fn, t] { fn(t); });
}

/// Formats nanoseconds for table cells.
inline std::string ns_cell(double ns) {
  return util::format_duration_ns(ns);
}

/// Prints a section header so bench output reads like the paper's tables.
inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::printf("\n=== %s ===\n%s\n\n", experiment.c_str(), claim.c_str());
}

/// Wall-clocks one callable.
inline double time_ns(const std::function<void()>& fn) {
  util::WallTimer t;
  t.start();
  fn();
  t.stop();
  return static_cast<double>(t.elapsed_ns());
}

// --- machine-readable artifacts (BENCH_*.json) -----------------------------
//
// The benches additionally emit a small JSON file so the measured
// throughput per machine model is recorded in the repo, not just scrolled
// past on a terminal. The format is one object with a "results" array of
// flat records; only strings and numbers appear, so a hand-rolled emitter
// is enough (no JSON library in the container).
//
// Every artifact goes through render_bench_json() below, which stamps the
// document with kBenchSchemaVersion. tools/bench_gate.py - the single CI
// gate over these artifacts - refuses to compare documents whose
// schema_version differs, so a stale committed baseline fails loudly
// instead of silently comparing mismatched metrics. Bump the version
// whenever the meaning of a recorded metric changes, and refresh every
// committed BENCH_*.json in the same commit (docs/VALIDATION.md, baseline
// refresh policy).

/// One "key": value JSON field; strings must already be json_str()-quoted.
inline std::string json_field(const std::string& key,
                              const std::string& value) {
  return "\"" + key + "\": " + value;
}

inline std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

inline std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

/// Like json_num(double) but with significant digits (%g): for ratio
/// metrics that can sit far below 1, where fixed %.3f would quantize the
/// gate's comparison into its own noise floor.
inline std::string json_num_sig(double v, int digits = 6) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, v);
  return buf;
}

inline std::string json_num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

inline std::string json_object(const std::vector<std::string>& fields,
                               const std::string& indent = "") {
  std::string out = indent + "{";
  for (std::size_t i = 0; i < fields.size(); ++i) {
    out += (i == 0 ? "" : ", ") + fields[i];
  }
  return out + "}";
}

/// Version of the BENCH_*.json contract shared by every writer and by
/// tools/bench_gate.py.
inline constexpr std::uint64_t kBenchSchemaVersion = 1;

/// Renders the canonical BENCH_*.json document:
///
///   {
///     "schema_version": <kBenchSchemaVersion>,
///     "bench": "<name>",
///     <meta fields...>,
///     "results": [ {flat row}, ... ]
///   }
///
/// `meta_fields` and each row's fields are pre-rendered with json_field().
/// Rows must be flat (strings and numbers only): tools/bench_gate.py keys
/// rows by their string-valued fields and compares the numeric ones.
inline std::string render_bench_json(
    const std::string& bench, const std::vector<std::string>& meta_fields,
    const std::vector<std::vector<std::string>>& rows) {
  std::string json =
      "{\n  " + json_field("schema_version", json_num(kBenchSchemaVersion));
  json += ",\n  " + json_field("bench", json_str(bench));
  for (const auto& field : meta_fields) json += ",\n  " + field;
  json += ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    json += json_object(rows[i], "    ");
    json += (i + 1 < rows.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  return json;
}

/// Host provenance fields recorded in every artifact that carries
/// host-relative ratios: absolute wall numbers are only comparable against
/// a baseline from a similar host, and the gate's ratio metrics are
/// measured back to back on one host precisely so this does not matter.
inline std::vector<std::string> host_meta_fields() {
  std::vector<std::string> fields;
  fields.push_back(json_field(
      "host_cpus",
      json_num(std::uint64_t(std::thread::hardware_concurrency()))));
#if defined(__linux__)
  fields.push_back(json_field("host_os", json_str("linux")));
#elif defined(__APPLE__)
  fields.push_back(json_field("host_os", json_str("darwin")));
#else
  fields.push_back(json_field("host_os", json_str("other")));
#endif
  return fields;
}

inline bool write_text_file(const std::string& path,
                            const std::string& text) {
  // Artifact paths may point into a directory that does not exist yet
  // (e.g. a CI upload dir); create it, and say why a write failed.
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "write_text_file: cannot open %s: %s\n",
                 path.c_str(), std::strerror(errno));
    return false;
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != text.size() || !closed) {
    std::fprintf(stderr, "write_text_file: short write to %s: %s\n",
                 path.c_str(), std::strerror(errno));
    return false;
  }
  return true;
}

}  // namespace force::bench
