// E9 - Lock scarcity ablation (paper §4.1.3).
//
// Claim: "in some machines, locks may be scarce resources. On these
// machines, some parallel programs may not execute as efficiently as
// others if a large number of asynchronous variables are needed."
//
// Reproduction: a wavefront-style workload over N async variables, run on
// the scarce-lock cray2 model with a shrinking lock budget. Past the
// budget, logical locks are multiplexed (striped) over a shared pool:
// semantics hold (checked), but the striped fraction contends - visible in
// contended-acquire counts and wall time. An unlimited-budget machine is
// the control.
#include <atomic>

#include "bench_common.hpp"
#include "core/async.hpp"
#include "util/cli.hpp"

namespace {
using force::bench::ns_cell;
}  // namespace

int main(int argc, char** argv) {
  force::util::CliParser cli;
  cli.option("np", "4", "force size")
      .option("nvars", "512", "async variables")
      .option("rounds", "20", "produce/consume rounds per variable");
  if (!cli.parse(argc, argv)) return 0;
  const int np = static_cast<int>(cli.get_int("np"));
  const auto nvars = static_cast<std::size_t>(cli.get_int("nvars"));
  const int rounds = static_cast<int>(cli.get_int("rounds"));

  force::bench::print_header(
      "E9  Lock scarcity",
      "Many async variables under a shrinking lock budget (cray2 lock "
      "mechanism): past the budget, logical locks multiplex over a shared "
      "pool and contention rises; correctness is preserved.");

  force::util::Table table({"budget", "logical locks", "striped",
                            "contended acquires", "wall", "correct"});
  for (int budget : {-1, 4096, 256, 64, 16}) {
    force::machdep::MachineSpec spec = force::machdep::machine_spec("cray2");
    spec.lock_budget = budget;
    spec.name = "cray2";  // same mechanism, varied budget
    force::machdep::MachineModel machine(spec);

    // Build the async variables straight on the machine model via a
    // dedicated environment-like harness: Async needs a ForceEnvironment,
    // so run the workload through locks directly - a faithful equivalent
    // of the two-lock scheme with E/F pairs per variable.
    struct Cell {
      std::unique_ptr<force::machdep::BasicLock> e, f;
      std::int64_t value = 0;
    };
    std::vector<Cell> cells(nvars);
    for (auto& c : cells) {
      c.e = machine.new_lock();
      c.f = machine.new_lock();
      c.e->acquire();  // empty
    }
    auto produce = [](Cell& c, std::int64_t v) {
      c.f->acquire();
      c.value = v;
      c.e->release();
    };
    auto consume = [](Cell& c) {
      c.e->acquire();
      const std::int64_t v = c.value;
      c.f->release();
      return v;
    };

    std::atomic<std::int64_t> sum{0};
    const auto before = force::machdep::snapshot(machine.counters());
    const double wall = force::bench::time_ns([&] {
      force::bench::on_team(np, [&](int me) {
        // Each process drives a produce/consume cycle over its slice of
        // the variables - every cycle is two lock passes per variable.
        std::int64_t local = 0;
        for (int r = 0; r < rounds; ++r) {
          for (std::size_t v = static_cast<std::size_t>(me); v < nvars;
               v += static_cast<std::size_t>(np)) {
            produce(cells[v], static_cast<std::int64_t>(v + 1));
          }
          for (std::size_t v = static_cast<std::size_t>(me); v < nvars;
               v += static_cast<std::size_t>(np)) {
            local += consume(cells[v]);
          }
        }
        sum.fetch_add(local);
      });
    });
    const auto delta =
        force::machdep::snapshot(machine.counters()) - before;
    // Each variable v contributes (v+1) once per round.
    std::int64_t expect = 0;
    for (std::size_t v = 0; v < nvars; ++v) {
      expect += static_cast<std::int64_t>(v + 1) * rounds;
    }
    const auto stats = machine.lock_stats();
    table.add_row(
        {budget < 0 ? "unlimited" : force::util::Table::num(
                                        static_cast<std::int64_t>(budget)),
         force::util::Table::num(
             static_cast<std::int64_t>(stats.logical_locks)),
         force::util::Table::num(
             static_cast<std::int64_t>(stats.striped_locks)),
         force::util::Table::num(
             static_cast<std::int64_t>(delta.contended_acquires)),
         ns_cell(wall), sum.load() == expect ? "yes" : "NO"});
    if (sum.load() != expect) return 1;
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nE9 verdict: shrinking the budget leaves results intact but drives "
      "striped-lock contention up - 'some parallel programs may not "
      "execute as efficiently' on scarce-lock machines, as the paper "
      "says.\n");
  return 0;
}
