// E5 - Produce/Consume: HEP hardware full/empty vs two-lock software
// scheme (paper §4.1.3, §4.2).
//
// Claim: "with the exception of the HEP computer which provided a hardware
// full/empty state for every memory cell, all other machines require the
// use of two locks for implementation of the full/empty state."
//
// Reproduction: producer/consumer ping-pong and a pipeline chain on the
// hep model (tagged cells) vs software-scheme machines (locks E and F),
// reporting throughput, lock traffic (zero on hep), and the simulated
// per-op cost on every machine. Plus google-benchmark micro timings for
// one cell transfer in each scheme.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/async.hpp"
#include "util/cli.hpp"

namespace {

namespace fc = force::core;
using force::bench::ns_cell;

fc::ForceConfig config_for(const std::string& machine) {
  fc::ForceConfig cfg;
  cfg.nproc = 2;
  cfg.machine = machine;
  return cfg;
}

void BM_HepCellPingPong(benchmark::State& state) {
  force::machdep::HepCell cell;
  std::uint64_t v = 0;
  for (auto _ : state) {
    cell.produce(v);
    benchmark::DoNotOptimize(v = cell.consume());
  }
}

void BM_TwoLockPingPong(benchmark::State& state) {
  fc::ForceEnvironment env(config_for("encore"));
  fc::Async<std::uint64_t> cell(env);
  std::uint64_t v = 0;
  for (auto _ : state) {
    cell.produce(v);
    benchmark::DoNotOptimize(v = cell.consume());
  }
}

}  // namespace

BENCHMARK(BM_HepCellPingPong)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_TwoLockPingPong)->Unit(benchmark::kNanosecond);

int main(int argc, char** argv) {
  force::util::CliParser cli;
  cli.option("ops", "20000", "transfers per measurement")
      .option("stages", "4", "pipeline stages");
  if (!cli.parse(argc, argv)) return 0;
  const auto ops = cli.get_int("ops");
  const int stages = static_cast<int>(cli.get_int("stages"));

  force::bench::print_header(
      "E5  Produce/Consume",
      "One cell transfer: HEP tagged memory needs zero locks; every other "
      "machine pays two lock passes (E and F) per produce+consume pair.");

  force::util::Table table({"machine", "impl", "transfers/s", "lock "
                            "acquires/op", "sim ns/op"});
  for (const auto& machine : force::bench::all_machines()) {
    force::Force f(config_for(machine));
    auto& done = f.shared<std::int64_t>("done");
    const auto before =
        force::machdep::snapshot(f.env().machine().counters());
    const double wall = force::bench::time_ns([&] {
      f.run([&](force::Ctx& ctx) {
        auto& cell = ctx.async_var<std::int64_t>(FORCE_SITE);
        if (ctx.me() == 1) {
          for (std::int64_t i = 0; i < ops; ++i) cell.produce(i);
        } else if (ctx.me() == 2) {
          std::int64_t acc = 0;
          for (std::int64_t i = 0; i < ops; ++i) acc += cell.consume();
          ctx.critical(FORCE_SITE, [&] { done = acc; });
        }
      });
    });
    (void)done;
    const auto delta =
        force::machdep::snapshot(f.env().machine().counters()) - before;
    // Each transfer is one produce + one consume.
    force::machdep::LockCountersSnapshot per;
    per.acquires = delta.acquires / static_cast<std::uint64_t>(ops);
    per.releases = delta.releases / static_cast<std::uint64_t>(ops);
    const auto& spec = f.env().machine().spec();
    const auto model = f.env().machine().cost_model();
    table.add_row(
        {machine, spec.hardware_full_empty ? "tagged-cell" : "two-lock",
         force::util::Table::num(ops / (wall * 1e-9)),
         force::util::Table::num(static_cast<std::int64_t>(per.acquires)),
         ns_cell(model.produce_consume_time_ns(2))});
  }
  std::fputs(table.render().c_str(), stdout);

  // Pipeline: data flows through `stages` cells; the force supplies one
  // process per stage plus a source.
  std::printf("\nPipeline of %d stages, %lld items:\n\n", stages,
              static_cast<long long>(ops / 10));
  force::util::Table pipe({"machine", "items/s", "produces"});
  for (const std::string machine : {"hep", "encore", "cray2", "native"}) {
    fc::ForceConfig cfg;
    cfg.nproc = stages + 1;
    cfg.machine = machine;
    force::Force f(cfg);
    const std::int64_t items = ops / 10;
    const double wall = force::bench::time_ns([&] {
      f.run([&](force::Ctx& ctx) {
        auto& cells = ctx.async_array<std::int64_t>(
            FORCE_SITE, static_cast<std::size_t>(stages));
        const int me0 = ctx.me0();
        if (me0 == 0) {  // source
          for (std::int64_t i = 1; i <= items; ++i) cells[0].produce(i);
          cells[0].produce(-1);
        } else {  // stage me0-1: consume from cell me0-1, pass to me0
          const auto in = static_cast<std::size_t>(me0 - 1);
          for (;;) {
            const std::int64_t v = cells[in].consume();
            if (me0 < stages) {
              cells[in + 1].produce(v);
            }
            if (v < 0) break;
          }
        }
      });
    });
    pipe.add_row({machine, force::util::Table::num(items / (wall * 1e-9)),
                  force::util::Table::num(static_cast<std::int64_t>(
                      f.env().stats().produces.load()))});
  }
  std::fputs(pipe.render().c_str(), stdout);
  std::printf(
      "\nE5 verdict: the hep row does 0 lock acquires per op (hardware "
      "full/empty); every other machine does 1 acquire per produce and per "
      "consume - the two-lock scheme, with cost set by its lock "
      "mechanism.\n\n");

  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
