// E11 (extension) - parallel algorithm skeletons on the Force.
//
// Not a paper table: the paper's workloads are the numerical kernels of
// E6. This harness covers the extension algorithms (core/algorithms.hpp)
// the same way - correctness at every force size plus cost-model speedup
// from per-process work accounting - demonstrating that library-level
// algorithms built purely from Force constructs inherit the portability
// and NP-independence properties.
#include <algorithm>
#include <cmath>
#include <numeric>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

namespace fc = force::core;
using force::bench::ns_cell;

struct Outcome {
  bool correct = false;
  double peak_work = 0;   // nominal ns on the busiest process
  double total_work = 0;  // nominal ns across the force
  double wall_ns = 0;
};

Outcome run_scan(const std::string& machine, int np, std::size_t n) {
  fc::ForceConfig cfg;
  cfg.machine = machine;
  cfg.nproc = np;
  force::Force f(cfg);
  force::util::Xoshiro256 rng(3);
  std::vector<std::int64_t> data(n);
  for (auto& x : data) x = rng.uniform_int(-5, 5);
  std::vector<std::int64_t> expect = data;
  std::partial_sum(expect.begin(), expect.end(), expect.begin());

  // Work model: phase 1 and phase 3 touch each element once -> every
  // process owns ~n/np elements, 2 passes, ~1ns per element.
  Outcome o;
  o.peak_work = 2.0 * static_cast<double>((n + np - 1) / np);
  o.total_work = 2.0 * static_cast<double>(n);
  o.wall_ns = force::bench::time_ns([&] {
    f.run([&](force::Ctx& ctx) {
      fc::parallel_inclusive_scan<std::int64_t>(
          ctx, FORCE_SITE, data,
          [](std::int64_t a, std::int64_t b) { return a + b; });
    });
  });
  o.correct = data == expect;
  return o;
}

Outcome run_sort(const std::string& machine, int np, std::size_t n) {
  fc::ForceConfig cfg;
  cfg.machine = machine;
  cfg.nproc = np;
  force::Force f(cfg);
  force::util::Xoshiro256 rng(4);
  std::vector<std::int64_t> data(n);
  for (auto& x : data) x = rng.uniform_int(-100000, 100000);
  std::vector<std::int64_t> expect = data;
  std::sort(expect.begin(), expect.end());

  // Work model: local sort n/np*log(n/np) + np merge phases of ~2n/np.
  const double b = static_cast<double>((n + np - 1) / np);
  Outcome o;
  o.peak_work = b * std::log2(std::max(2.0, b)) + np * 2.0 * b;
  o.total_work = o.peak_work * np;
  o.wall_ns = force::bench::time_ns([&] {
    f.run([&](force::Ctx& ctx) { fc::parallel_sort(ctx, FORCE_SITE, data); });
  });
  o.correct = data == expect;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  force::util::CliParser cli;
  cli.option("nprocs", "1,2,4,8", "force sizes")
      .option("machine", "encore", "machine for the simulated speedup")
      .option("n", "100000", "element count");
  if (!cli.parse(argc, argv)) return 0;
  const auto nprocs = force::util::parse_int_list(cli.get("nprocs"));
  const std::string machine = cli.get("machine");
  const auto n = static_cast<std::size_t>(cli.get_int("n"));

  force::bench::print_header(
      "E11  Parallel algorithm skeletons (extension)",
      "Scan and sort built purely from Force constructs; correctness at "
      "every NP, cost-model speedup on machine '" + machine + "'.");

  const auto model = force::machdep::CostModel(
      force::machdep::machine_spec(machine).costs);

  for (const char* which : {"scan", "sort"}) {
    force::util::Table table(
        {"np", "correct", "peak/total work", "sim time", "speedup", "wall"});
    double t1 = 0.0;
    for (int np : nprocs) {
      const Outcome o = std::string(which) == "scan"
                            ? run_scan(machine, np, n)
                            : run_sort(machine, np, n);
      // Simulated time: busiest process's work + one barrier per phase.
      const int phases = std::string(which) == "scan" ? 3 : np + 1;
      const double sim = model.work_time_ns(o.peak_work) +
                         phases * model.params().barrier_episode_ns;
      if (np == nprocs.front()) t1 = sim * nprocs.front();
      table.add_row(
          {force::util::Table::num(static_cast<std::int64_t>(np)),
           o.correct ? "yes" : "NO",
           force::util::Table::num(o.peak_work / o.total_work),
           ns_cell(sim), force::util::Table::num(t1 / sim),
           ns_cell(o.wall_ns)});
      if (!o.correct) return 1;
    }
    std::printf("%s (n=%zu):\n\n", which, n);
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }
  std::printf(
      "E11 verdict: scan scales near-linearly; odd-even block sort's NP "
      "merge phases cap its speedup (the classic barrier-sort trade-off) - "
      "and every row computes the same answer.\n");
  return 0;
}
