// E10 - The preprocessor pipeline (paper §4.2 expansion listing, §4.3).
//
// Claim: compilation is sed -> m4 (two macro levels) -> native compiler,
// and only the small machine-dependent macro set changes per port.
//
// Reproduction: translate a reference program for every machine and
// report translation throughput, macro expansion counts, and - key - the
// size of the machine-dependent difference: the generated translation
// units for two machines are diffed line-by-line and the differing
// fraction is printed (small, mostly driver/startup, exactly the paper's
// porting surface).
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "preproc/textutil.hpp"
#include "preproc/translate.hpp"
#include "util/cli.hpp"

namespace {

namespace pp = force::preproc;

const char* kProgram = R"(Force BENCHPROG
Shared real A(64), B(64)
Shared integer N
Async real V
Private integer I
Private real T
End declarations
Barrier
  N = 64;
End barrier
Selfsched DO 10 I = 0, 63
  A[I] = 2.0 * I;
10 End Selfsched DO
Presched DO 20 I = 0, 63, 2
  B[I] = A[I] + 1.0;
20 End Presched DO
Critical CSUM
  T = T + 1.0;
End critical
Pcase Selfsched
Usect
  Produce V = T
Usect
  Consume V into T
End pcase
Forcecall HELPER
Join
Forcesub HELPER
Shared integer CALLS
Critical HLOCK
  CALLS = CALLS + 1;
End critical
End Forcesub
)";

std::size_t diff_lines(const std::string& a, const std::string& b) {
  const auto la = pp::split_lines(a);
  const auto lb = pp::split_lines(b);
  std::size_t differing = 0;
  const std::size_t n = std::max(la.size(), lb.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& x = i < la.size() ? la[i] : std::string();
    const std::string& y = i < lb.size() ? lb[i] : std::string();
    if (x != y) ++differing;
  }
  return differing;
}

}  // namespace

int main(int argc, char** argv) {
  force::util::CliParser cli;
  cli.option("repeats", "200", "translations per throughput measurement");
  if (!cli.parse(argc, argv)) return 0;
  const int repeats = static_cast<int>(cli.get_int("repeats"));

  force::bench::print_header(
      "E10  The forcepp pipeline",
      "Translation of a full-construct program per machine: throughput, "
      "expansion counts, and how much of the generated code is actually "
      "machine dependent.");

  force::util::Table table({"machine", "ok", "output lines",
                            "macro expansions", "translations/s"});
  std::vector<std::pair<std::string, std::string>> outputs;
  for (const auto& machine : force::bench::all_machines()) {
    pp::TranslateOptions opts;
    opts.machine = machine;
    opts.source_name = "benchprog.force";
    auto result = pp::translate(kProgram, opts);
    const double wall = force::bench::time_ns([&] {
      for (int i = 0; i < repeats; ++i) {
        auto r = pp::translate(kProgram, opts);
        if (!r.ok) std::abort();
      }
    });
    outputs.emplace_back(machine, result.cpp_code);
    table.add_row(
        {machine, result.ok ? "yes" : "NO",
         force::util::Table::num(static_cast<std::int64_t>(
             pp::split_lines(result.cpp_code).size())),
         force::util::Table::num(
             static_cast<std::int64_t>(result.macro_expansions)),
         force::util::Table::num(repeats / (wall * 1e-9))});
    if (!result.ok) {
      std::fputs(result.diags.render_all("benchprog.force").c_str(), stderr);
      return 1;
    }
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nMachine-dependent surface (lines differing from the hep "
              "translation):\n\n");
  force::util::Table diff({"machine", "differing lines", "of total",
                           "fraction"});
  const std::string& reference = outputs.front().second;  // hep
  for (const auto& [machine, code] : outputs) {
    const std::size_t d = diff_lines(reference, code);
    const std::size_t total = pp::split_lines(code).size();
    diff.add_row({machine,
                  force::util::Table::num(static_cast<std::int64_t>(d)),
                  force::util::Table::num(static_cast<std::int64_t>(total)),
                  force::util::Table::num(static_cast<double>(d) /
                                          static_cast<double>(total))});
  }
  std::fputs(diff.render().c_str(), stdout);
  std::printf(
      "\nE10 verdict: the construct bodies are identical across machines; "
      "only declaration comments, startup routines and the generated "
      "driver differ - the paper's 'only a small portion of the "
      "preprocessor is machine dependent'.\n");
  return 0;
}
