// E3 - Prescheduled vs selfscheduled DOALL (paper §3.3, §4.2).
//
// Claim: prescheduling is free but fixes the assignment at compile time;
// selfscheduling balances load through a shared, lock-protected loop index
// and therefore pays a serialized dispatch per claim.
//
// Reproduction, two views:
//   1. Deterministic: makespans from the cost-model scheduler for four
//      workload shapes. Cyclic prescheduling balances uniform and even
//      monotone (triangular) profiles well; it collapses when the heavy
//      iterations align with the process count ("aligned") and degrades on
//      heavy tails ("lognormal") - where selfscheduling wins. A grain
//      sweep exposes the crossover where the serialized dispatch eats the
//      balance advantage, and chunked/guided recover it.
//   2. Measured on the runtime with forced interleaving (a yield per
//      iteration, since the container has one CPU): the dynamic schedules
//      spread iterations across processes while presched's split is fixed.
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/doall.hpp"
#include "core/env.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

namespace fc = force::core;
using force::bench::ns_cell;

std::vector<double> make_work(const std::string& shape, std::size_t n,
                              double grain_ns, int np) {
  force::util::Xoshiro256 rng(2026);
  std::vector<double> w(n, grain_ns);
  if (shape == "uniform") return w;
  if (shape == "linear") {
    for (std::size_t i = 0; i < n; ++i) {
      w[i] = grain_ns * 2.0 * static_cast<double>(n - i) /
             static_cast<double>(n);
    }
    return w;
  }
  if (shape == "aligned") {
    // Heavy iterations land on stride np: under a cyclic deal one process
    // receives every heavy iteration.
    for (std::size_t i = 0; i < n; i += static_cast<std::size_t>(np)) {
      w[i] = grain_ns * 8.0;
    }
    return w;
  }
  for (auto& x : w) x = grain_ns * rng.lognormal(0.0, 1.2);  // heavy tail
  return w;
}

/// One dispatch-throughput measurement: an empty-body selfsched DOALL at
/// chunk 1, so wall time is pure dispatch cost. `dispatch_mode` is the
/// ForceConfig knob ("auto" or "locked").
struct DispatchThroughput {
  std::string machine;
  std::string engine;  // "atomic" or "locked" (what actually ran)
  std::uint64_t trips = 0;
  std::uint64_t iterations = 0;  // executed-body count; must equal trips
  std::uint64_t dispatches = 0;
  double wall_ns = 0;
  double per_sec = 0;
};

DispatchThroughput measure_dispatch(const std::string& machine,
                                    const std::string& dispatch_mode, int np,
                                    std::int64_t trips) {
  fc::ForceConfig cfg;
  cfg.nproc = np;
  cfg.machine = machine;
  cfg.dispatch = dispatch_mode;
  fc::ForceEnvironment env(cfg);
  fc::SelfschedLoop loop(env, np);
  DispatchThroughput r;
  r.machine = machine;
  r.engine = env.lock_free_dispatch() ? "atomic" : "locked";
  r.trips = static_cast<std::uint64_t>(trips);
  r.wall_ns = force::bench::time_ns([&] {
    force::bench::on_team(np, [&](int me) {
      loop.run(me, 1, trips, 1, [](std::int64_t) {}, /*chunk=*/1);
    });
  });
  r.iterations = env.stats().doall_iterations.load();
  r.dispatches = env.stats().doall_dispatches.load();
  r.per_sec = static_cast<double>(r.dispatches) / (r.wall_ns * 1e-9);
  return r;
}

double measured_imbalance(const std::string& schedule,
                          const std::vector<double>& work, int np) {
  fc::ForceConfig cfg;
  cfg.nproc = np;
  fc::ForceEnvironment env(cfg);
  fc::SelfschedLoop loop(env, np);
  std::vector<double> per_proc(static_cast<std::size_t>(np), 0.0);
  force::bench::on_team(np, [&](int me) {
    auto body = [&](std::int64_t i) {
      // The iteration's cost is modelled as a blocking sleep: on the
      // 1-CPU container sleeps overlap like real parallel work would, so
      // a process stuck in a heavy iteration genuinely misses claims and
      // the dynamic schedules adapt (a spin+yield would just recreate the
      // cyclic deal).
      std::this_thread::sleep_for(std::chrono::nanoseconds(
          static_cast<std::int64_t>(work[static_cast<std::size_t>(i)])));
      per_proc[static_cast<std::size_t>(me)] +=
          work[static_cast<std::size_t>(i)];
    };
    const auto last = static_cast<std::int64_t>(work.size()) - 1;
    if (schedule == "presched") {
      fc::presched_do(me, np, 0, last, 1, body);
    } else if (schedule == "guided") {
      loop.run_guided(me, 0, last, 1, body);
    } else if (schedule == "chunked") {
      loop.run(me, 0, last, 1, body, 16);
    } else {
      loop.run(me, 0, last, 1, body);
    }
  });
  return force::util::load_imbalance(per_proc);
}

}  // namespace

int main(int argc, char** argv) {
  force::util::CliParser cli;
  cli.option("n", "4096", "iterations")
      .option("np", "8", "force size")
      .option("machine", "encore", "machine for the simulated view")
      .option("json", "BENCH_doall.json",
              "dispatch-throughput record (empty disables)")
      .flag("quick", "CI smoke mode: np=2, small trip counts");
  if (!cli.parse(argc, argv)) return 0;
  const bool quick = cli.get_flag("quick");
  const auto n =
      quick ? std::size_t{512} : static_cast<std::size_t>(cli.get_int("n"));
  const int np = quick ? 2 : static_cast<int>(cli.get_int("np"));
  const std::string machine = cli.get("machine");

  force::bench::print_header(
      "E3  Presched vs selfsched DOALL",
      "Deterministic makespans (cost model, machine '" + machine +
          "') plus runtime-measured work distribution.");

  const auto model = force::machdep::CostModel(
      force::machdep::machine_spec(machine).costs);
  const double dispatch = model.default_dispatch_ns();

  std::printf("Simulated makespans by workload (grain 5000ns, np=%d):\n\n",
              np);
  force::util::Table mk1({"workload", "presched", "selfsched", "chunked(16)",
                          "guided~", "presched/selfsched"});
  for (const char* shape : {"uniform", "linear", "aligned", "lognormal"}) {
    const auto work = make_work(shape, n, 5000.0, np);
    const double pre = model.presched_makespan_ns(work, np);
    const double self = model.selfsched_makespan_ns(work, np, dispatch);
    const double chunk = model.chunked_makespan_ns(work, np, dispatch, 16);
    const double guided = model.chunked_makespan_ns(
        work, np, dispatch,
        std::max<std::size_t>(1, n / (2 * static_cast<std::size_t>(np))));
    mk1.add_row({shape, ns_cell(pre), ns_cell(self), ns_cell(chunk),
                 ns_cell(guided), force::util::Table::num(pre / self)});
  }
  std::fputs(mk1.render().c_str(), stdout);

  std::printf(
      "\nGrain sweep on the 'aligned' workload (the crossover view):\n\n");
  force::util::Table mk2({"grain ns", "presched", "selfsched", "chunked(16)",
                          "winner"});
  for (double grain : {20.0, 100.0, 500.0, 2000.0, 10000.0}) {
    const auto work = make_work("aligned", n, grain, np);
    const double pre = model.presched_makespan_ns(work, np);
    const double self = model.selfsched_makespan_ns(work, np, dispatch);
    const double chunk = model.chunked_makespan_ns(work, np, dispatch, 16);
    const double best = std::min({pre, self, chunk});
    const char* winner =
        best == pre ? "presched" : best == self ? "selfsched" : "chunked";
    mk2.add_row({force::util::Table::num(grain), ns_cell(pre), ns_cell(self),
                 ns_cell(chunk), winner});
  }
  std::fputs(mk2.render().c_str(), stdout);

  std::printf(
      "\nMeasured work distribution on the runtime (max/mean - 1; iteration "
      "cost modelled as a blocking sleep), np=%d, n=%zu:\n\n",
      np, n / 8);
  force::util::Table imb({"workload", "presched", "selfsched", "chunked(16)",
                          "guided"});
  for (const char* shape : {"uniform", "aligned", "lognormal"}) {
    // Smaller n for the measured view: sleep granularity is ~10us.
    const auto work = make_work(shape, n / 8, 50000.0, np);
    imb.add_row({shape,
                 force::util::Table::num(
                     measured_imbalance("presched", work, np)),
                 force::util::Table::num(
                     measured_imbalance("selfsched", work, np)),
                 force::util::Table::num(
                     measured_imbalance("chunked", work, np)),
                 force::util::Table::num(
                     measured_imbalance("guided", work, np))});
  }
  std::fputs(imb.render().c_str(), stdout);

  std::printf(
      "\nE3 verdict: selfscheduling wins when heavy work aligns against "
      "the static cyclic deal (and on heavy tails); at fine grain its "
      "serialized dispatch loses to presched, and chunking recovers most "
      "of the gap - the paper's trade-off.\n");

  // --- dispatch throughput: the lock-free fast path vs the lock engine ----
  //
  // Empty body, chunk 1: every iteration is one dispatch, so the rate IS
  // the dispatch engine's throughput. Machines with hardware_atomic_rmw
  // run both engines (auto picks the atomic one; "locked" pins the seed's
  // lock path); lock-only machines have only the lock engine.
  std::printf(
      "\nDispatch throughput (empty body, chunk=1, np=%d; rate is "
      "dispatches/sec):\n\n",
      np);
  std::vector<DispatchThroughput> rates;
  const std::int64_t atomic_trips = quick ? 20000 : 200000;
  const std::int64_t locked_trips = quick ? 2000 : 20000;
  for (const auto& m : force::bench::all_machines()) {
    const bool rmw = force::machdep::machine_spec(m).hardware_atomic_rmw;
    // The atomic engine dispatches much faster; give it more trips so both
    // engines get measurable wall times. Rates stay comparable.
    rates.push_back(measure_dispatch(m, "auto", np, rmw ? atomic_trips
                                                        : locked_trips));
    if (rmw) rates.push_back(measure_dispatch(m, "locked", np, locked_trips));
  }
  force::util::Table disp({"machine", "engine", "trips", "dispatch/s"});
  double native_atomic = 0, native_locked = 0;
  bool dispatch_ok = true;
  for (const auto& r : rates) {
    disp.add_row({r.machine, r.engine,
                  force::util::Table::num(static_cast<std::int64_t>(r.trips)),
                  force::util::Table::num(r.per_sec)});
    // Correctness gate: every trip must run exactly once, whatever the
    // dispatch engine. A lost or doubled claim is a dispatch regression.
    if (r.iterations != r.trips) {
      std::printf("MISMATCH: %s/%s executed %llu of %llu trips\n",
                  r.machine.c_str(), r.engine.c_str(),
                  static_cast<unsigned long long>(r.iterations),
                  static_cast<unsigned long long>(r.trips));
      dispatch_ok = false;
    }
    if (r.machine == "native") {
      (r.engine == "atomic" ? native_atomic : native_locked) = r.per_sec;
    }
  }
  std::fputs(disp.render().c_str(), stdout);
  const double speedup =
      native_locked > 0 ? native_atomic / native_locked : 0;
  std::printf(
      "\nnative@%d: atomic fast path = %.2fx the lock-path dispatch rate.\n",
      np, speedup);

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    namespace fb = force::bench;
    std::vector<std::vector<std::string>> rows;
    for (const auto& r : rates) {
      rows.push_back(
          {fb::json_field("machine", fb::json_str(r.machine)),
           fb::json_field("engine", fb::json_str(r.engine)),
           fb::json_field("trips", fb::json_num(r.trips)),
           fb::json_field("dispatches", fb::json_num(r.dispatches)),
           fb::json_field("wall_ns", fb::json_num(r.wall_ns)),
           fb::json_field("dispatches_per_sec", fb::json_num(r.per_sec))});
    }
    const std::string json = fb::render_bench_json(
        "doall_dispatch",
        {fb::json_field("np", fb::json_num(std::uint64_t(np))),
         fb::json_field("chunk", fb::json_num(std::uint64_t(1))),
         fb::json_field("native_atomic_over_locked", fb::json_num(speedup))},
        rows);
    if (fb::write_text_file(json_path, json)) {
      std::printf("Recorded dispatch throughput in %s\n", json_path.c_str());
    } else {
      std::printf("WARNING: could not write %s\n", json_path.c_str());
    }
  }
  return dispatch_ok ? 0 : 1;
}
