// E1 - The portability matrix (paper §1, §4.2).
//
// Claim: one Force program runs unchanged on six very different shared
// memory multiprocessors, because only the low-level macro layer is ported.
//
// Reproduction: the construct suite (selfsched + presched DOALL, barrier
// sections, critical sections, pcase, askfor, produce/consume relay,
// resolve) runs on every machine model at several force sizes. The table
// reports correctness, the machine-dependent resources actually used
// (lock mechanism / sharing / process model), the observed lock traffic,
// and the simulated machine time for that traffic.
#include <atomic>

#include "bench_common.hpp"
#include "util/cli.hpp"

namespace {

using force::bench::ns_cell;

/// The machine-independent program (identical for every row).
bool construct_suite(force::Force& f, std::int64_t n) {
  auto& sum = f.shared<std::int64_t>("sum");
  auto& hits = f.shared<std::int64_t>("hits");
  (void)f.shared<std::int64_t>("rsum");
  std::atomic<std::int64_t> relay_final{0};

  f.run([&](force::Ctx& ctx) {
    std::int64_t local = 0;
    ctx.selfsched_do(FORCE_SITE, 1, n, 1,
                     [&](std::int64_t i) { local += i; });
    ctx.critical(FORCE_SITE, [&] { sum += local; });
    ctx.barrier();

    ctx.pcase(FORCE_SITE)
        .sect([&] { ctx.critical(FORCE_SITE, [&] { ++hits; }); })
        .sect([&] { ctx.critical(FORCE_SITE, [&] { ++hits; }); })
        .run_selfsched();
    ctx.barrier();

    auto& monitor = ctx.askfor<std::int64_t>(FORCE_SITE);
    if (ctx.leader()) monitor.put(8);
    ctx.barrier();
    monitor.work([&](std::int64_t& v, force::core::Askfor<std::int64_t>& s) {
      if (v > 1) {
        s.put(v / 2);
        s.put(v / 2);
      }
      ctx.critical(FORCE_SITE, [&] { ++hits; });
    });
    ctx.barrier();

    auto& relay = ctx.async_var<std::int64_t>(FORCE_SITE);
    if (ctx.me() == 1) relay.produce(0);
    for (int hop = 0; hop < 2; ++hop) relay.produce(relay.consume() + 1);
    ctx.barrier([&] { relay_final = relay.consume(); });

    auto& rsum = ctx.shared<std::int64_t>("rsum");
    if (ctx.np() >= 2) {
      ctx.resolve(FORCE_SITE)
          .component("a", 1,
                     [&](force::Ctx& sub) {
                       std::int64_t l = 0;
                       sub.selfsched_do(FORCE_SITE, 1, 40, 1,
                                        [&](std::int64_t i) { l += i; });
                       sub.critical(FORCE_SITE, [&] { rsum += l; });
                     })
          .component("b", 1,
                     [&](force::Ctx& sub) {
                       std::int64_t l = 0;
                       sub.presched_do(1, 40, 1,
                                       [&](std::int64_t i) { l += i; });
                       sub.critical(FORCE_SITE, [&] { rsum += l; });
                     })
          .run();
    }
  });

  bool ok = sum == n * (n + 1) / 2;
  ok = ok && hits == 2 + 15;  // pcase blocks + askfor tasks (8 splits to 15)
  ok = ok && relay_final.load() == 2 * f.nproc();
  ok = ok && (f.nproc() < 2 || f.shared<std::int64_t>("rsum") == 2 * 820);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  force::util::CliParser cli;
  cli.option("nprocs", "1,2,4,8", "force sizes to sweep")
      .option("n", "2000", "loop length");
  if (!cli.parse(argc, argv)) return 0;
  const auto nprocs = force::util::parse_int_list(cli.get("nprocs"));
  const auto n = cli.get_int("n");

  force::bench::print_header(
      "E1  Portability matrix",
      "One Force program, unchanged, on all seven machine models (paper "
      "claim: ports need only the low-level macro layer).");

  force::util::Table table({"machine", "np", "locks", "sharing", "processes",
                            "correct", "wall", "lock ops", "contended",
                            "sim lock time"});
  bool all_ok = true;
  for (const auto& machine : force::bench::all_machines()) {
    for (int np : nprocs) {
      force::ForceConfig cfg;
      cfg.machine = machine;
      cfg.nproc = np;
      force::Force f(cfg);
      const auto before =
          force::machdep::snapshot(f.env().machine().counters());
      bool ok = false;
      const double wall =
          force::bench::time_ns([&] { ok = construct_suite(f, n); });
      const auto delta =
          force::machdep::snapshot(f.env().machine().counters()) - before;
      all_ok = all_ok && ok;
      const auto& spec = f.env().machine().spec();
      table.add_row(
          {machine, force::util::Table::num(static_cast<std::int64_t>(np)),
           force::machdep::lock_kind_name(spec.lock_kind),
           force::machdep::sharing_strategy_name(spec.sharing),
           force::machdep::process_model_name(spec.process_model),
           ok ? "yes" : "NO", ns_cell(wall),
           force::util::Table::num(static_cast<std::int64_t>(delta.acquires)),
           force::util::Table::num(
               static_cast<std::int64_t>(delta.contended_acquires)),
           ns_cell(f.env().machine().cost_model().lock_time_ns(delta))});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nE1 verdict: %s - the construct suite passed on %zu machine "
              "models x %zu force sizes with zero source changes.\n",
              all_ok ? "REPRODUCED" : "FAILED",
              force::bench::all_machines().size(), nprocs.size());
  return all_ok ? 0 : 1;
}
