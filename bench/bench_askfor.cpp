// E8 - Askfor vs DOALL on irregular work (paper §3.3).
//
// Claim: "the most general concept ... provides a means of work
// distribution in cases where the degree of concurrency is not known at
// compile time" - DOALL needs the iteration space up front; Askfor lets
// running tasks create new ones.
//
// Reproduction: an irregular binary task tree (depth chosen per node by a
// seeded RNG). Askfor executes it directly. The DOALL emulation must
// first materialize the whole frontier level by level (one selfsched loop
// + barrier per level) - the extra machinery the paper's remark predicts.
// Reported: tasks executed, dispatch operations, barrier episodes, work
// imbalance and wall time.
#include <atomic>
#include <mutex>
#include <vector>

#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using force::bench::ns_cell;

struct Task {
  std::uint64_t id;
  int depth;
};

/// Deterministic irregular fan-out: how many children a task spawns.
int children_of(std::uint64_t id, int depth, int max_depth) {
  if (depth >= max_depth) return 0;
  force::util::SplitMix64 h(id * 2654435761u + static_cast<unsigned>(depth));
  const auto r = h.next() % 100;
  if (r < 35) return 0;  // leaf early: irregularity
  if (r < 85) return 2;
  return 3;
}

struct Outcome {
  std::uint64_t tasks = 0;
  double wall_ns = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t barriers = 0;
  double imbalance = 0;
};

Outcome run_askfor(int np, int max_depth) {
  force::Force f({.nproc = np});
  std::atomic<std::uint64_t> executed{0};
  std::vector<double> per_proc(static_cast<std::size_t>(np), 0.0);
  Outcome out;
  out.wall_ns = force::bench::time_ns([&] {
    f.run([&](force::Ctx& ctx) {
      auto& monitor = ctx.askfor<Task>(FORCE_SITE);
      if (ctx.leader()) monitor.put({1, 0});
      ctx.barrier();
      monitor.work([&](Task& t, force::core::Askfor<Task>& self) {
        executed.fetch_add(1, std::memory_order_relaxed);
        per_proc[static_cast<std::size_t>(ctx.me0())] += 1.0;
        const int kids = children_of(t.id, t.depth, max_depth);
        for (int c = 0; c < kids; ++c) {
          self.put({t.id * 4 + static_cast<std::uint64_t>(c), t.depth + 1});
        }
      });
    });
  });
  out.tasks = executed.load();
  out.dispatches = f.env().stats().askfor_grants.load();
  out.barriers = f.env().stats().barrier_episodes.load();
  out.imbalance = force::util::load_imbalance(per_proc);
  return out;
}

Outcome run_doall_emulation(int np, int max_depth) {
  // Level-synchronous emulation: DOALL over the current frontier, collect
  // children into the next frontier under a critical section, barrier,
  // repeat. This is what a language without run-time work creation must do.
  force::Force f({.nproc = np});
  std::atomic<std::uint64_t> executed{0};
  std::vector<double> per_proc(static_cast<std::size_t>(np), 0.0);
  auto& frontier = f.shared<std::vector<Task>*>("frontier");
  auto& next = f.shared<std::vector<Task>*>("next");
  std::vector<Task> buf_a{{1, 0}};
  std::vector<Task> buf_b;
  frontier = &buf_a;
  next = &buf_b;
  std::mutex next_mutex;
  Outcome out;
  out.wall_ns = force::bench::time_ns([&] {
    f.run([&](force::Ctx& ctx) {
      while (!frontier->empty()) {
        ctx.selfsched_do(
            FORCE_SITE, 0,
            static_cast<std::int64_t>(frontier->size()) - 1, 1,
            [&](std::int64_t i) {
              const Task t = (*frontier)[static_cast<std::size_t>(i)];
              executed.fetch_add(1, std::memory_order_relaxed);
              per_proc[static_cast<std::size_t>(ctx.me0())] += 1.0;
              const int kids = children_of(t.id, t.depth, max_depth);
              std::lock_guard<std::mutex> g(next_mutex);
              for (int c = 0; c < kids; ++c) {
                next->push_back({t.id * 4 + static_cast<std::uint64_t>(c),
                                 t.depth + 1});
              }
            });
        ctx.barrier([&] {
          std::swap(frontier, next);
          next->clear();
        });
      }
    });
  });
  out.tasks = executed.load();
  out.dispatches = f.env().stats().doall_dispatches.load();
  out.barriers = f.env().stats().barrier_episodes.load();
  out.imbalance = force::util::load_imbalance(per_proc);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  force::util::CliParser cli;
  cli.option("nprocs", "2,4,8", "force sizes")
      .option("depth", "12", "max task-tree depth");
  if (!cli.parse(argc, argv)) return 0;
  const auto nprocs = force::util::parse_int_list(cli.get("nprocs"));
  const int depth = static_cast<int>(cli.get_int("depth"));

  force::bench::print_header(
      "E8  Askfor vs DOALL emulation on an irregular task tree",
      "Askfor consumes run-time-generated work directly; a DOALL-only "
      "program needs a level-synchronous frontier with a barrier per "
      "level.");

  force::util::Table table({"np", "scheme", "tasks", "dispatches",
                            "barriers", "imbalance", "wall"});
  for (int np : nprocs) {
    const Outcome a = run_askfor(np, depth);
    const Outcome d = run_doall_emulation(np, depth);
    if (a.tasks != d.tasks) {
      std::printf("MISMATCH: askfor %llu vs doall %llu tasks\n",
                  static_cast<unsigned long long>(a.tasks),
                  static_cast<unsigned long long>(d.tasks));
      return 1;
    }
    auto row = [&](const char* scheme, const Outcome& o) {
      table.add_row({force::util::Table::num(static_cast<std::int64_t>(np)),
                     scheme,
                     force::util::Table::num(static_cast<std::int64_t>(o.tasks)),
                     force::util::Table::num(
                         static_cast<std::int64_t>(o.dispatches)),
                     force::util::Table::num(
                         static_cast<std::int64_t>(o.barriers)),
                     force::util::Table::num(o.imbalance),
                     ns_cell(o.wall_ns)});
    };
    row("askfor", a);
    row("doall-frontier", d);
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nE8 verdict: identical task counts, but the DOALL emulation needs "
      "one barrier per tree level while Askfor needs none - run-time work "
      "creation removes the level synchronization entirely.\n");
  return 0;
}
