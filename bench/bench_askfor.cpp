// E8 - Askfor vs DOALL on irregular work (paper §3.3).
//
// Claim: "the most general concept ... provides a means of work
// distribution in cases where the degree of concurrency is not known at
// compile time" - DOALL needs the iteration space up front; Askfor lets
// running tasks create new ones.
//
// Reproduction: an irregular binary task tree (depth chosen per node by a
// seeded RNG). Askfor executes it directly. The DOALL emulation must
// first materialize the whole frontier level by level (one selfsched loop
// + barrier per level) - the extra machinery the paper's remark predicts.
// Reported: tasks executed, dispatch operations, barrier episodes, work
// imbalance and wall time.
#include <atomic>
#include <mutex>
#include <vector>

#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using force::bench::ns_cell;

struct Task {
  std::uint64_t id;
  int depth;
};

/// Deterministic irregular fan-out: how many children a task spawns.
int children_of(std::uint64_t id, int depth, int max_depth) {
  if (depth >= max_depth) return 0;
  force::util::SplitMix64 h(id * 2654435761u + static_cast<unsigned>(depth));
  const auto r = h.next() % 100;
  if (r < 35) return 0;  // leaf early: irregularity
  if (r < 85) return 2;
  return 3;
}

struct Outcome {
  std::uint64_t tasks = 0;
  double wall_ns = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t barriers = 0;
  double imbalance = 0;
};

Outcome run_askfor(int np, int max_depth) {
  force::Force f({.nproc = np});
  std::atomic<std::uint64_t> executed{0};
  std::vector<double> per_proc(static_cast<std::size_t>(np), 0.0);
  Outcome out;
  out.wall_ns = force::bench::time_ns([&] {
    f.run([&](force::Ctx& ctx) {
      auto& monitor = ctx.askfor<Task>(FORCE_SITE);
      if (ctx.leader()) monitor.put({1, 0});
      ctx.barrier();
      monitor.work([&](Task& t, force::core::Askfor<Task>& self) {
        executed.fetch_add(1, std::memory_order_relaxed);
        per_proc[static_cast<std::size_t>(ctx.me0())] += 1.0;
        const int kids = children_of(t.id, t.depth, max_depth);
        for (int c = 0; c < kids; ++c) {
          self.put({t.id * 4 + static_cast<std::uint64_t>(c), t.depth + 1});
        }
      });
    });
  });
  out.tasks = executed.load();
  out.dispatches = f.env().stats().askfor_grants.load();
  out.barriers = f.env().stats().barrier_episodes.load();
  out.imbalance = force::util::load_imbalance(per_proc);
  return out;
}

Outcome run_doall_emulation(int np, int max_depth) {
  // Level-synchronous emulation: DOALL over the current frontier, collect
  // children into the next frontier under a critical section, barrier,
  // repeat. This is what a language without run-time work creation must do.
  force::Force f({.nproc = np});
  std::atomic<std::uint64_t> executed{0};
  std::vector<double> per_proc(static_cast<std::size_t>(np), 0.0);
  auto& frontier = f.shared<std::vector<Task>*>("frontier");
  auto& next = f.shared<std::vector<Task>*>("next");
  std::vector<Task> buf_a{{1, 0}};
  std::vector<Task> buf_b;
  frontier = &buf_a;
  next = &buf_b;
  std::mutex next_mutex;
  Outcome out;
  out.wall_ns = force::bench::time_ns([&] {
    f.run([&](force::Ctx& ctx) {
      while (!frontier->empty()) {
        ctx.selfsched_do(
            FORCE_SITE, 0,
            static_cast<std::int64_t>(frontier->size()) - 1, 1,
            [&](std::int64_t i) {
              const Task t = (*frontier)[static_cast<std::size_t>(i)];
              executed.fetch_add(1, std::memory_order_relaxed);
              per_proc[static_cast<std::size_t>(ctx.me0())] += 1.0;
              const int kids = children_of(t.id, t.depth, max_depth);
              std::lock_guard<std::mutex> g(next_mutex);
              for (int c = 0; c < kids; ++c) {
                next->push_back({t.id * 4 + static_cast<std::uint64_t>(c),
                                 t.depth + 1});
              }
            });
        ctx.barrier([&] {
          std::swap(frontier, next);
          next->clear();
        });
      }
    });
  });
  out.tasks = executed.load();
  out.dispatches = f.env().stats().doall_dispatches.load();
  out.barriers = f.env().stats().barrier_episodes.load();
  out.imbalance = force::util::load_imbalance(per_proc);
  return out;
}

/// One grant-throughput measurement: a regular binary task tree with an
/// empty body, expanded by work-stealing workers, so wall time is pure
/// monitor traffic. `dispatch_mode` is the ForceConfig knob ("auto" or
/// "locked").
struct GrantThroughput {
  std::string machine;
  std::string engine;  // "atomic" (work stealing) or "locked" (monitor)
  std::uint64_t grants = 0;
  std::uint64_t expected = 0;  // np complete binary trees of `depth` levels
  double wall_ns = 0;
  double per_sec = 0;
};

GrantThroughput measure_grants(const std::string& machine,
                               const std::string& dispatch_mode, int np,
                               int depth) {
  force::core::ForceConfig cfg;
  cfg.nproc = np;
  cfg.machine = machine;
  cfg.dispatch = dispatch_mode;
  force::core::ForceEnvironment env(cfg);
  using TreeTask = std::pair<int, int>;  // (depth, lane)
  force::core::Askfor<TreeTask> monitor(env);
  // One root per process, seeded centrally; all expansion happens inside
  // worker bodies, i.e. on the per-worker deques when the fast path is on.
  for (int r = 0; r < np; ++r) monitor.put({1, r});
  GrantThroughput g;
  g.machine = machine;
  g.engine = env.lock_free_dispatch() ? "atomic" : "locked";
  g.wall_ns = force::bench::time_ns([&] {
    force::bench::on_team(np, [&](int) {
      monitor.work([&](TreeTask& t, force::core::Askfor<TreeTask>& self) {
        if (t.first < depth) {
          self.put({t.first + 1, t.second});
          self.put({t.first + 1, t.second});
        }
      });
    });
  });
  g.grants = monitor.granted();
  // np complete binary trees, `depth` levels each: np * (2^depth - 1) tasks,
  // every one granted exactly once.
  g.expected = static_cast<std::uint64_t>(np) *
               ((std::uint64_t{1} << depth) - 1);
  g.per_sec = static_cast<double>(g.grants) / (g.wall_ns * 1e-9);
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  force::util::CliParser cli;
  cli.option("nprocs", "2,4,8", "force sizes")
      .option("depth", "12", "max task-tree depth")
      .option("json", "BENCH_askfor.json",
              "grant-throughput record (empty disables)")
      .flag("quick", "CI smoke mode: np=2, shallow trees");
  if (!cli.parse(argc, argv)) return 0;
  const bool quick = cli.get_flag("quick");
  const auto nprocs = quick ? std::vector<int>{2}
                            : force::util::parse_int_list(cli.get("nprocs"));
  const int depth = quick ? 8 : static_cast<int>(cli.get_int("depth"));

  force::bench::print_header(
      "E8  Askfor vs DOALL emulation on an irregular task tree",
      "Askfor consumes run-time-generated work directly; a DOALL-only "
      "program needs a level-synchronous frontier with a barrier per "
      "level.");

  force::util::Table table({"np", "scheme", "tasks", "dispatches",
                            "barriers", "imbalance", "wall"});
  for (int np : nprocs) {
    const Outcome a = run_askfor(np, depth);
    const Outcome d = run_doall_emulation(np, depth);
    if (a.tasks != d.tasks) {
      std::printf("MISMATCH: askfor %llu vs doall %llu tasks\n",
                  static_cast<unsigned long long>(a.tasks),
                  static_cast<unsigned long long>(d.tasks));
      return 1;
    }
    auto row = [&](const char* scheme, const Outcome& o) {
      table.add_row({force::util::Table::num(static_cast<std::int64_t>(np)),
                     scheme,
                     force::util::Table::num(static_cast<std::int64_t>(o.tasks)),
                     force::util::Table::num(
                         static_cast<std::int64_t>(o.dispatches)),
                     force::util::Table::num(
                         static_cast<std::int64_t>(o.barriers)),
                     force::util::Table::num(o.imbalance),
                     ns_cell(o.wall_ns)});
    };
    row("askfor", a);
    row("doall-frontier", d);
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nE8 verdict: identical task counts, but the DOALL emulation needs "
      "one barrier per tree level while Askfor needs none - run-time work "
      "creation removes the level synchronization entirely.\n");

  // --- grant throughput: work stealing vs the single monitor --------------
  //
  // Empty-body binary task trees, expanded inside worker bodies: on the
  // fast path the expansion lives on the per-worker Chase-Lev deques and
  // the monitor lock stays cold; "locked" pins the seed's single-monitor
  // engine. Lock-only machines have only the monitor engine.
  const int np_grants = nprocs.empty() ? 8 : nprocs.back();
  std::printf(
      "\nGrant throughput (empty tasks, binary tree, np=%d; rate is "
      "grants/sec):\n\n",
      np_grants);
  std::vector<GrantThroughput> rates;
  const int atomic_depth = quick ? 8 : 13;
  const int locked_depth = quick ? 6 : 9;
  for (const auto& m : force::bench::all_machines()) {
    const bool rmw = force::machdep::machine_spec(m).hardware_atomic_rmw;
    // Deeper trees for the (much faster) stealing engine so both engines
    // get measurable wall times; the reported rate stays comparable.
    rates.push_back(measure_grants(m, "auto", np_grants,
                                   rmw ? atomic_depth : locked_depth));
    if (rmw) {
      rates.push_back(measure_grants(m, "locked", np_grants, locked_depth));
    }
  }
  force::util::Table gr({"machine", "engine", "grants", "grants/s"});
  double native_atomic = 0, native_locked = 0;
  bool grants_ok = true;
  for (const auto& r : rates) {
    gr.add_row({r.machine, r.engine,
                force::util::Table::num(static_cast<std::int64_t>(r.grants)),
                force::util::Table::num(r.per_sec)});
    // Correctness gate: a grant lost or duplicated by the monitor or the
    // work-stealing deques is a dispatch regression.
    if (r.grants != r.expected) {
      std::printf("MISMATCH: %s/%s granted %llu of %llu tasks\n",
                  r.machine.c_str(), r.engine.c_str(),
                  static_cast<unsigned long long>(r.grants),
                  static_cast<unsigned long long>(r.expected));
      grants_ok = false;
    }
    if (r.machine == "native") {
      (r.engine == "atomic" ? native_atomic : native_locked) = r.per_sec;
    }
  }
  std::fputs(gr.render().c_str(), stdout);
  const double speedup =
      native_locked > 0 ? native_atomic / native_locked : 0;
  std::printf(
      "\nnative@%d: work-stealing fast path = %.2fx the single-monitor "
      "grant rate.\n",
      np_grants, speedup);

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    namespace fb = force::bench;
    std::vector<std::vector<std::string>> rows;
    for (const auto& r : rates) {
      rows.push_back(
          {fb::json_field("machine", fb::json_str(r.machine)),
           fb::json_field("engine", fb::json_str(r.engine)),
           fb::json_field("grants", fb::json_num(r.grants)),
           fb::json_field("wall_ns", fb::json_num(r.wall_ns)),
           fb::json_field("grants_per_sec", fb::json_num(r.per_sec))});
    }
    const std::string json = fb::render_bench_json(
        "askfor_grants",
        {fb::json_field("np", fb::json_num(std::uint64_t(np_grants))),
         fb::json_field("native_atomic_over_locked", fb::json_num(speedup))},
        rows);
    if (fb::write_text_file(json_path, json)) {
      std::printf("Recorded grant throughput in %s\n", json_path.c_str());
    } else {
      std::printf("WARNING: could not write %s\n", json_path.c_str());
    }
  }
  return grants_ok ? 0 : 1;
}
