// E2 - Barrier algorithm comparison (paper §4.2 Barrier, citing [AJ87]
// "Comparing Barrier Algorithms").
//
// Claim: the Force's barrier is built from generic locks plus the parallel
// environment's counters; [AJ87] compares such lock barriers with
// counter/sense and log-depth algorithms.
//
// Reproduction: wall time per episode for each algorithm over a force-size
// sweep, plus the lock traffic of the lock-only barrier and its simulated
// cost per machine. Shapes to observe: the lock barrier's traffic grows
// linearly with NP and is serialized; tree/dissemination costs grow
// logarithmically (visible in their signal counts).
#include <bit>

#include "bench_common.hpp"
#include "core/barrier.hpp"
#include "core/force.hpp"
#include "util/cli.hpp"

namespace {

using force::bench::ns_cell;
namespace fc = force::core;

double episodes_per_second(fc::BarrierAlgorithm& barrier, int np,
                           int episodes) {
  const double wall = force::bench::time_ns([&] {
    force::bench::on_team(np, [&](int me) {
      for (int e = 0; e < episodes; ++e) barrier.arrive(me);
    });
  });
  return episodes / (wall * 1e-9);
}

}  // namespace

int main(int argc, char** argv) {
  force::util::CliParser cli;
  cli.option("nprocs", "1,2,4,8", "force sizes")
      .option("episodes", "2000", "barrier episodes per measurement");
  if (!cli.parse(argc, argv)) return 0;
  const auto nprocs = force::util::parse_int_list(cli.get("nprocs"));
  const auto episodes = static_cast<int>(cli.get_int("episodes"));

  force::bench::print_header(
      "E2  Barrier algorithms",
      "Wall time per episode per algorithm (host measurement; NP threads "
      "timeshare the container CPU), plus deterministic lock-op counts.");

  force::util::Table wall_table(
      {"algorithm", "np", "episodes/s", "ns/episode"});
  for (const auto& algorithm : fc::barrier_algorithm_names()) {
    for (int np : nprocs) {
      fc::ForceConfig cfg;
      cfg.nproc = np;
      fc::ForceEnvironment env(cfg);
      auto barrier = fc::make_barrier_algorithm(algorithm, env, np);
      const double eps = episodes_per_second(*barrier, np, episodes);
      wall_table.add_row({algorithm,
                          force::util::Table::num(static_cast<std::int64_t>(np)),
                          force::util::Table::num(eps),
                          force::util::Table::num(1e9 / eps)});
    }
  }
  std::fputs(wall_table.render().c_str(), stdout);

  // Deterministic part: lock operations per episode of the lock-only
  // barrier, and the simulated cost on each machine. Acquires per episode
  // are exactly 4 + 2 per process (entry mutex + turnstiles), growing
  // linearly with NP - the O(P) serialization [AJ87] charges to
  // lock/counter barriers.
  std::printf("\nLock-only (paper) barrier, deterministic traffic:\n\n");
  force::util::Table lock_table({"np", "acquires/episode", "sim ns/episode "
                                 "(hep)", "(encore)", "(cray2)"});
  for (int np : nprocs) {
    fc::ForceConfig cfg;
    cfg.nproc = np;
    cfg.machine = "native";
    fc::ForceEnvironment env(cfg);
    fc::PaperLockBarrier barrier(env, np);
    const auto before = force::machdep::snapshot(env.machine().counters());
    constexpr int kEpisodes = 64;
    force::bench::on_team(np, [&](int me) {
      for (int e = 0; e < kEpisodes; ++e) barrier.arrive(me);
    });
    auto delta =
        force::machdep::snapshot(env.machine().counters()) - before;
    // Normalize to one episode; spin counts are scheduling noise, so the
    // simulated time uses only the deterministic acquire/release traffic.
    force::machdep::LockCountersSnapshot per;
    per.acquires = delta.acquires / kEpisodes;
    per.releases = delta.releases / kEpisodes;
    auto sim = [&](const char* machine) {
      return force::machdep::CostModel(
                 force::machdep::machine_spec(machine).costs)
          .lock_time_ns(per);
    };
    lock_table.add_row(
        {force::util::Table::num(static_cast<std::int64_t>(np)),
         force::util::Table::num(static_cast<std::int64_t>(per.acquires)),
         ns_cell(sim("hep")), ns_cell(sim("encore")), ns_cell(sim("cray2"))});
  }
  std::fputs(lock_table.render().c_str(), stdout);

  // Log-depth algorithms: signals per episode (exact, analytic check).
  std::printf("\nSignal counts per episode (deterministic):\n\n");
  force::util::Table sig({"np", "paper-lock acquires", "tree waits",
                          "dissemination signals"});
  for (int np : nprocs) {
    const int rounds =
        np > 1 ? std::bit_width(static_cast<unsigned>(np - 1)) : 0;
    sig.add_row({force::util::Table::num(static_cast<std::int64_t>(np)),
                 force::util::Table::num(
                     static_cast<std::int64_t>(4 + 2 * np)),
                 force::util::Table::num(static_cast<std::int64_t>(
                     np > 1 ? np - 1 : 0)),  // tree: one wait per child edge
                 force::util::Table::num(
                     static_cast<std::int64_t>(np * rounds))});
  }
  std::fputs(sig.render().c_str(), stdout);

  // E2b ablation: the reduction built on the lock idiom (critical section
  // + barrier, the faithful Force shape) vs the lock-free combining tree.
  std::printf("\nE2b  Reduction ablation (allreduce of one int64, %d "
              "episodes):\n\n",
              episodes / 4);
  force::util::Table red({"strategy", "np", "lock acquires/episode",
                          "ns/episode"});
  for (int np : nprocs) {
    for (auto strategy : {fc::ReduceStrategy::kCritical,
                          fc::ReduceStrategy::kTournament}) {
      fc::ForceConfig cfg;
      cfg.nproc = np;
      cfg.barrier_algorithm = "central-sense";  // isolate the idiom's locks
      force::Force f(cfg);
      f.run([](force::Ctx&) {});  // create construct state lazily below
      const int eps = episodes / 4;
      const auto before =
          force::machdep::snapshot(f.env().machine().counters());
      const double wall = force::bench::time_ns([&] {
        f.run([&](force::Ctx& ctx) {
          for (int e = 0; e < eps; ++e) {
            (void)ctx.reduce<std::int64_t>(
                FORCE_SITE, ctx.me(),
                [](std::int64_t a, std::int64_t b) { return a + b; },
                strategy);
          }
        });
      });
      const auto delta =
          force::machdep::snapshot(f.env().machine().counters()) - before;
      red.add_row(
          {strategy == fc::ReduceStrategy::kCritical ? "critical+barrier"
                                                     : "combining tree",
           force::util::Table::num(static_cast<std::int64_t>(np)),
           force::util::Table::num(static_cast<double>(delta.acquires) /
                                   eps),
           force::util::Table::num(wall / eps)});
    }
  }
  std::fputs(red.render().c_str(), stdout);

  std::printf(
      "\nE2 verdict: lock barrier cost grows linearly with NP (serialized "
      "lock passes); dissemination does NP*ceil(log2 NP) parallel signals - "
      "the [AJ87] shape. E2b: the critical-section reduction pays NP "
      "serialized lock passes per episode, the combining tree zero.\n");
  return 0;
}
