// E7 - Process creation cost (paper §4.1.1).
//
// Claim: "the standard UNIX fork/join process control model ... has a
// large process creation and context switching cost. This prevents fine
// grained parallelism, unless the parallelism is enclosed inside the
// program structure"; the HEP creates processes with a subroutine call,
// and the Alliant copies only the stack.
//
// Reproduction:
//   * measured: bytes actually copied at spawn per model as the private
//     segment grows (the real fork-cost driver), plus host wall time;
//   * simulated: per-machine creation cost, and the work-grain crossover:
//     how much computation a force must do before creating it pays off -
//     tiny on the HEP, enormous on the fork machines.
#include <algorithm>
#include <cstdlib>

#include "bench_common.hpp"
#include "machdep/process.hpp"
#include "util/cli.hpp"

namespace {
using force::bench::ns_cell;
namespace md = force::machdep;
}  // namespace

int main(int argc, char** argv) {
  force::util::CliParser cli;
  cli.option("np", "8", "force size");
  cli.option("json", "BENCH_process.json",
             "write spawn-cost records here ('' to skip)");
  cli.option("invocations", "30",
             "repeated force entries per team-lifetime mode");
  cli.option("spawn-json", "BENCH_spawn.json",
             "write repeated-entry records here ('' to skip); gate the "
             "record against the committed baseline with "
             "tools/bench_gate.py");
  if (!cli.parse(argc, argv)) return 0;
  const int np = static_cast<int>(cli.get_int("np"));

  force::bench::print_header(
      "E7  Process creation",
      "Creation cost per model: what spawn must copy, and the simulated "
      "cost per machine; then the grain a program needs before a fork "
      "pays off.");

  // The thread-emulated models plus the real things: os-fork spawns actual
  // fork(2) children, so its wall time is the genuine UNIX process-control
  // cost the paper complains about, measured on this host; cluster adds a
  // socket connection per member on top of the fork (bare spawn, no DSM
  // arena installed - the transport handshake is what is being priced).
  struct SpawnRecord {
    const char* model;
    std::size_t kib;
    std::uint64_t bytes_copied;
    double wall_ns;
  };
  std::vector<SpawnRecord> records;

  std::printf("Measured spawn behaviour (np=%d):\n\n", np);
  force::util::Table meas({"model", "private KiB/proc", "bytes copied",
                           "wall create+join"});
  for (auto kind : {md::ProcessModelKind::kHepCreate,
                    md::ProcessModelKind::kForkSharedData,
                    md::ProcessModelKind::kForkJoinCopy,
                    md::ProcessModelKind::kOsFork,
                    md::ProcessModelKind::kCluster}) {
    for (std::size_t kib : {64, 1024}) {
      md::PrivateSpace space(kib * 1024 / 2, kib * 1024 / 2);
      md::ProcessTeam team(kind);
      const auto stats = team.run(np, &space, [](int) {});
      const double wall =
          static_cast<double>(stats.create_ns + stats.join_ns);
      records.push_back({md::process_model_name(kind), kib,
                         static_cast<std::uint64_t>(stats.bytes_copied),
                         wall});
      meas.add_row(
          {md::process_model_name(kind),
           force::util::Table::num(static_cast<std::int64_t>(kib)),
           force::util::Table::num(
               static_cast<std::int64_t>(stats.bytes_copied)),
           ns_cell(wall)});
    }
  }
  std::fputs(meas.render().c_str(), stdout);

  // Thread-emulated vs real fork: how much more a genuine process team
  // costs to stand up than the HEP's "subroutine call" creation.
  double hep_wall = 0.0;
  double osfork_wall = 0.0;
  double cluster_wall = 0.0;
  for (const auto& r : records) {
    if (r.kib != 64) continue;
    if (std::string(r.model) == "hep-create") hep_wall = r.wall_ns;
    if (std::string(r.model) == "os-fork") osfork_wall = r.wall_ns;
    if (std::string(r.model) == "cluster") cluster_wall = r.wall_ns;
  }
  if (hep_wall > 0.0 && osfork_wall > 0.0) {
    std::printf(
        "\nReal fork(2) spawn is %.1fx the thread-emulated hep-create "
        "spawn at 64 KiB private space.\n",
        osfork_wall / hep_wall);
  }
  if (osfork_wall > 0.0 && cluster_wall > 0.0) {
    std::printf(
        "Cluster spawn (fork + one socket handshake per member) is %.1fx "
        "the plain os-fork spawn at 64 KiB private space.\n",
        cluster_wall / osfork_wall);
  }

  std::printf("\nSimulated creation cost (np=%d, 1 MiB private/proc):\n\n",
              np);
  force::util::Table sim({"machine", "model", "sim creation", "equivalent "
                          "flops @1ns"});
  for (const auto& machine : force::bench::all_machines()) {
    const auto& spec = md::machine_spec(machine);
    // Bytes copied under the machine's model:
    const std::size_t per_proc = 1u << 20;
    std::size_t copied = 0;
    switch (spec.process_model) {
      case md::ProcessModelKind::kForkJoinCopy:
        copied = static_cast<std::size_t>(np) * per_proc;
        break;
      case md::ProcessModelKind::kForkSharedData:
        copied = static_cast<std::size_t>(np) * per_proc / 4;  // stack only
        break;
      case md::ProcessModelKind::kHepCreate:
        copied = 0;
        break;
      case md::ProcessModelKind::kOsFork:
      case md::ProcessModelKind::kCluster:
        copied = 0;  // copy-on-write: nothing is copied eagerly at spawn
        break;
    }
    const auto model = md::CostModel(spec.costs);
    const double create = model.creation_time_ns(np, copied);
    sim.add_row({machine, md::process_model_name(spec.process_model),
                 ns_cell(create), force::util::Table::num(create)});
  }
  std::fputs(sim.render().c_str(), stdout);

  // Grain crossover: creating the force pays off once parallel work saved
  // exceeds the creation cost. work(np) = W/np + create(np); serial = W.
  // Crossover W* where parallel beats serial: W*(1 - 1/np) = create.
  std::printf(
      "\nWork needed before creating a force of %d beats serial "
      "execution:\n\n",
      np);
  force::util::Table grain({"machine", "sim create", "break-even work",
                            "at 1us/iter that is"});
  for (const auto& machine : force::bench::all_machines()) {
    const auto& spec = md::machine_spec(machine);
    std::size_t copied = spec.process_model == md::ProcessModelKind::kForkJoinCopy
                             ? static_cast<std::size_t>(np) << 20
                         : spec.process_model ==
                                 md::ProcessModelKind::kForkSharedData
                             ? static_cast<std::size_t>(np) << 18
                             : 0;
    const auto model = md::CostModel(spec.costs);
    const double create = model.creation_time_ns(np, copied);
    const double breakeven = create / (1.0 - 1.0 / np);
    // Convert simulated ns back to nominal iterations of 1us work.
    const double iters = breakeven / model.work_time_ns(1000.0);
    grain.add_row({machine, ns_cell(create), ns_cell(breakeven),
                   force::util::Table::num(iters) + " iters"});
  }
  std::fputs(grain.render().c_str(), stdout);
  std::printf(
      "\nE7 verdict: the fork machines need orders of magnitude more work "
      "to amortize creation than the HEP - why the Force encloses the "
      "whole program in one force instead of forking per parallel "
      "region.\n");

  // --- Repeated force entry: the team-lifetime axis --------------------
  //
  // A Force program normally pays the spawn tax once (one force around
  // the whole program), but driver-per-step embeddings re-enter the force
  // repeatedly. ForceConfig::team_pool keeps the team resident between
  // entries; this section measures the per-entry cost of each mode. Every
  // entry runs one global barrier so all members demonstrably
  // participate.
  const int invocations =
      std::max(1, static_cast<int>(cli.get_int("invocations")));
  const auto trivial = [](force::Ctx& ctx) { ctx.barrier(); };
  const auto entry_ns = [&](force::ForceConfig cfg) {
    cfg.nproc = np;
    // 64 KiB private space per process: the paper's fork-cost driver.
    cfg.private_data_bytes = 32u << 10;
    cfg.private_stack_bytes = 32u << 10;
    force::Force f(cfg);
    f.run(trivial);  // warm: startup linkage + (pooled) the one spawn
    return force::bench::time_ns([&] {
             for (int i = 0; i < invocations; ++i) f.run(trivial);
           }) /
           invocations;
  };

  struct EntryRecord {
    std::string model;
    std::string mode;
    double ns_per_invocation;
  };
  std::vector<EntryRecord> entries;
  const auto measure_entry = [&](const char* model, const char* mode,
                                 force::ForceConfig cfg) {
    entries.push_back({model, mode, entry_ns(std::move(cfg))});
  };

  std::printf("\nRepeated force entry (np=%d, %d invocations, 64 KiB "
              "private space):\n\n",
              np, invocations);
  {
    force::ForceConfig cfg;
    measure_entry("thread", "respawn", cfg);
    cfg.team_pool = true;
    measure_entry("thread", "pooled", cfg);
    cfg.pool_workers = std::max(1, np / 2);  // N:M, NP = 2W
    measure_entry("thread-nm", "pooled", cfg);
  }
  {
    force::ForceConfig cfg;
    cfg.process_model = "os-fork";
    measure_entry("os-fork", "respawn", cfg);
    cfg.team_pool = true;
    measure_entry("os-fork", "pooled", cfg);
  }
  {
    // No pooled mode: the cluster backend rejects team_pool (each entry
    // forks a fresh socket-connected team), so this row prices exactly
    // the per-entry tax a driver-per-step embedding would pay.
    force::ForceConfig cfg;
    cfg.process_model = "cluster";
    measure_entry("cluster", "respawn", cfg);
  }

  force::util::Table pool_tab({"model", "team lifetime", "ns/invocation"});
  const auto entry_of = [&](const std::string& model,
                            const std::string& mode) {
    for (const auto& e : entries) {
      if (e.model == model && e.mode == mode) return e.ns_per_invocation;
    }
    return 0.0;
  };
  for (const auto& e : entries) {
    pool_tab.add_row({e.model, e.mode, ns_cell(e.ns_per_invocation)});
  }
  std::fputs(pool_tab.render().c_str(), stdout);

  const double thread_speedup =
      entry_of("thread", "respawn") / entry_of("thread", "pooled");
  const double thread_nm_speedup =
      entry_of("thread", "respawn") / entry_of("thread-nm", "pooled");
  const double os_fork_speedup =
      entry_of("os-fork", "respawn") / entry_of("os-fork", "pooled");
  const double cluster_entry_ratio =
      entry_of("cluster", "respawn") / entry_of("os-fork", "respawn");
  std::printf(
      "\nPooled re-entry speedup over cold spawn: thread %.1fx, "
      "thread N:M %.1fx, os-fork %.1fx; cluster re-entry costs %.1fx "
      "the os-fork respawn.\n",
      thread_speedup, thread_nm_speedup, os_fork_speedup,
      cluster_entry_ratio);

  // The pooled re-entry regression gate lives in tools/bench_gate.py
  // (the one gate mechanism for every BENCH_*.json): the *_pooled_speedup
  // ratios recorded here are host-relative - pooled and respawn are
  // measured back to back on the same host - so the gate's 1.5x floor is
  // immune to absolute CI-host noise.
  const std::string spawn_json_path = cli.get("spawn-json");
  if (!spawn_json_path.empty()) {
    namespace fb = force::bench;
    std::vector<std::string> meta = {
        fb::json_field("np", fb::json_num(std::uint64_t(np))),
        fb::json_field("invocations", fb::json_num(std::uint64_t(invocations)))};
    for (auto& h : fb::host_meta_fields()) meta.push_back(std::move(h));
    meta.push_back(fb::json_field("thread_pooled_speedup",
                                  fb::json_num(thread_speedup)));
    meta.push_back(fb::json_field("thread_nm_pooled_speedup",
                                  fb::json_num(thread_nm_speedup)));
    meta.push_back(fb::json_field("os_fork_pooled_speedup",
                                  fb::json_num(os_fork_speedup)));
    meta.push_back(fb::json_field("cluster_entry_over_os_fork",
                                  fb::json_num(cluster_entry_ratio)));
    std::vector<std::vector<std::string>> rows;
    for (const auto& e : entries) {
      rows.push_back(
          {fb::json_field("model", fb::json_str(e.model)),
           fb::json_field("mode", fb::json_str(e.mode)),
           fb::json_field("np", fb::json_num(std::uint64_t(np))),
           fb::json_field("ns_per_invocation",
                          fb::json_num(e.ns_per_invocation))});
    }
    const std::string json = fb::render_bench_json("force_entry", meta, rows);
    if (fb::write_text_file(spawn_json_path, json)) {
      std::printf("Wrote %s\n", spawn_json_path.c_str());
    }
  }

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    namespace fb = force::bench;
    std::vector<std::string> meta = {
        fb::json_field("np", fb::json_num(std::uint64_t(np)))};
    if (hep_wall > 0.0 && osfork_wall > 0.0) {
      meta.push_back(fb::json_field("os_fork_over_hep_create",
                                    fb::json_num(osfork_wall / hep_wall)));
    }
    if (osfork_wall > 0.0 && cluster_wall > 0.0) {
      // Host-relative (both sides measured back to back on this runner):
      // gate with tools/bench_gate.py --metric cluster_spawn_over_os_fork
      // :lower so a transport-setup regression goes red without absolute
      // CI-host noise tripping it.
      meta.push_back(
          fb::json_field("cluster_spawn_over_os_fork",
                         fb::json_num(cluster_wall / osfork_wall)));
    }
    std::vector<std::vector<std::string>> rows;
    for (const auto& r : records) {
      rows.push_back(
          {fb::json_field("model", fb::json_str(r.model)),
           fb::json_field("private_kib", fb::json_num(std::uint64_t(r.kib))),
           fb::json_field("bytes_copied", fb::json_num(r.bytes_copied)),
           fb::json_field("wall_ns", fb::json_num(r.wall_ns))});
    }
    const std::string json = fb::render_bench_json("process_spawn", meta, rows);
    if (fb::write_text_file(json_path, json)) {
      std::printf("\nWrote %s\n", json_path.c_str());
    }
  }
  return 0;
}
