// E7 - Process creation cost (paper §4.1.1).
//
// Claim: "the standard UNIX fork/join process control model ... has a
// large process creation and context switching cost. This prevents fine
// grained parallelism, unless the parallelism is enclosed inside the
// program structure"; the HEP creates processes with a subroutine call,
// and the Alliant copies only the stack.
//
// Reproduction:
//   * measured: bytes actually copied at spawn per model as the private
//     segment grows (the real fork-cost driver), plus host wall time;
//   * simulated: per-machine creation cost, and the work-grain crossover:
//     how much computation a force must do before creating it pays off -
//     tiny on the HEP, enormous on the fork machines.
#include "bench_common.hpp"
#include "machdep/process.hpp"
#include "util/cli.hpp"

namespace {
using force::bench::ns_cell;
namespace md = force::machdep;
}  // namespace

int main(int argc, char** argv) {
  force::util::CliParser cli;
  cli.option("np", "8", "force size");
  if (!cli.parse(argc, argv)) return 0;
  const int np = static_cast<int>(cli.get_int("np"));

  force::bench::print_header(
      "E7  Process creation",
      "Creation cost per model: what spawn must copy, and the simulated "
      "cost per machine; then the grain a program needs before a fork "
      "pays off.");

  std::printf("Measured spawn behaviour (np=%d):\n\n", np);
  force::util::Table meas({"model", "private KiB/proc", "bytes copied",
                           "wall create+join"});
  for (auto kind : {md::ProcessModelKind::kHepCreate,
                    md::ProcessModelKind::kForkSharedData,
                    md::ProcessModelKind::kForkJoinCopy}) {
    for (std::size_t kib : {64, 1024}) {
      md::PrivateSpace space(kib * 1024 / 2, kib * 1024 / 2);
      md::ProcessTeam team(kind);
      const auto stats = team.run(np, &space, [](int) {});
      meas.add_row(
          {md::process_model_name(kind),
           force::util::Table::num(static_cast<std::int64_t>(kib)),
           force::util::Table::num(
               static_cast<std::int64_t>(stats.bytes_copied)),
           ns_cell(static_cast<double>(stats.create_ns + stats.join_ns))});
    }
  }
  std::fputs(meas.render().c_str(), stdout);

  std::printf("\nSimulated creation cost (np=%d, 1 MiB private/proc):\n\n",
              np);
  force::util::Table sim({"machine", "model", "sim creation", "equivalent "
                          "flops @1ns"});
  for (const auto& machine : force::bench::all_machines()) {
    const auto& spec = md::machine_spec(machine);
    // Bytes copied under the machine's model:
    const std::size_t per_proc = 1u << 20;
    std::size_t copied = 0;
    switch (spec.process_model) {
      case md::ProcessModelKind::kForkJoinCopy:
        copied = static_cast<std::size_t>(np) * per_proc;
        break;
      case md::ProcessModelKind::kForkSharedData:
        copied = static_cast<std::size_t>(np) * per_proc / 4;  // stack only
        break;
      case md::ProcessModelKind::kHepCreate:
        copied = 0;
        break;
    }
    const auto model = md::CostModel(spec.costs);
    const double create = model.creation_time_ns(np, copied);
    sim.add_row({machine, md::process_model_name(spec.process_model),
                 ns_cell(create), force::util::Table::num(create)});
  }
  std::fputs(sim.render().c_str(), stdout);

  // Grain crossover: creating the force pays off once parallel work saved
  // exceeds the creation cost. work(np) = W/np + create(np); serial = W.
  // Crossover W* where parallel beats serial: W*(1 - 1/np) = create.
  std::printf(
      "\nWork needed before creating a force of %d beats serial "
      "execution:\n\n",
      np);
  force::util::Table grain({"machine", "sim create", "break-even work",
                            "at 1us/iter that is"});
  for (const auto& machine : force::bench::all_machines()) {
    const auto& spec = md::machine_spec(machine);
    std::size_t copied = spec.process_model == md::ProcessModelKind::kForkJoinCopy
                             ? static_cast<std::size_t>(np) << 20
                         : spec.process_model ==
                                 md::ProcessModelKind::kForkSharedData
                             ? static_cast<std::size_t>(np) << 18
                             : 0;
    const auto model = md::CostModel(spec.costs);
    const double create = model.creation_time_ns(np, copied);
    const double breakeven = create / (1.0 - 1.0 / np);
    // Convert simulated ns back to nominal iterations of 1us work.
    const double iters = breakeven / model.work_time_ns(1000.0);
    grain.add_row({machine, ns_cell(create), ns_cell(breakeven),
                   force::util::Table::num(iters) + " iters"});
  }
  std::fputs(grain.render().c_str(), stdout);
  std::printf(
      "\nE7 verdict: the fork machines need orders of magnitude more work "
      "to amortize creation than the HEP - why the Force encloses the "
      "whole program in one force instead of forking per parallel "
      "region.\n");
  return 0;
}
