// E7 - Process creation cost (paper §4.1.1).
//
// Claim: "the standard UNIX fork/join process control model ... has a
// large process creation and context switching cost. This prevents fine
// grained parallelism, unless the parallelism is enclosed inside the
// program structure"; the HEP creates processes with a subroutine call,
// and the Alliant copies only the stack.
//
// Reproduction:
//   * measured: bytes actually copied at spawn per model as the private
//     segment grows (the real fork-cost driver), plus host wall time;
//   * simulated: per-machine creation cost, and the work-grain crossover:
//     how much computation a force must do before creating it pays off -
//     tiny on the HEP, enormous on the fork machines.
#include "bench_common.hpp"
#include "machdep/process.hpp"
#include "util/cli.hpp"

namespace {
using force::bench::ns_cell;
namespace md = force::machdep;
}  // namespace

int main(int argc, char** argv) {
  force::util::CliParser cli;
  cli.option("np", "8", "force size");
  cli.option("json", "BENCH_process.json",
             "write spawn-cost records here ('' to skip)");
  if (!cli.parse(argc, argv)) return 0;
  const int np = static_cast<int>(cli.get_int("np"));

  force::bench::print_header(
      "E7  Process creation",
      "Creation cost per model: what spawn must copy, and the simulated "
      "cost per machine; then the grain a program needs before a fork "
      "pays off.");

  // The thread-emulated models plus the real thing: os-fork spawns actual
  // fork(2) children, so its wall time is the genuine UNIX process-control
  // cost the paper complains about, measured on this host.
  struct SpawnRecord {
    const char* model;
    std::size_t kib;
    std::uint64_t bytes_copied;
    double wall_ns;
  };
  std::vector<SpawnRecord> records;

  std::printf("Measured spawn behaviour (np=%d):\n\n", np);
  force::util::Table meas({"model", "private KiB/proc", "bytes copied",
                           "wall create+join"});
  for (auto kind : {md::ProcessModelKind::kHepCreate,
                    md::ProcessModelKind::kForkSharedData,
                    md::ProcessModelKind::kForkJoinCopy,
                    md::ProcessModelKind::kOsFork}) {
    for (std::size_t kib : {64, 1024}) {
      md::PrivateSpace space(kib * 1024 / 2, kib * 1024 / 2);
      md::ProcessTeam team(kind);
      const auto stats = team.run(np, &space, [](int) {});
      const double wall =
          static_cast<double>(stats.create_ns + stats.join_ns);
      records.push_back({md::process_model_name(kind), kib,
                         static_cast<std::uint64_t>(stats.bytes_copied),
                         wall});
      meas.add_row(
          {md::process_model_name(kind),
           force::util::Table::num(static_cast<std::int64_t>(kib)),
           force::util::Table::num(
               static_cast<std::int64_t>(stats.bytes_copied)),
           ns_cell(wall)});
    }
  }
  std::fputs(meas.render().c_str(), stdout);

  // Thread-emulated vs real fork: how much more a genuine process team
  // costs to stand up than the HEP's "subroutine call" creation.
  double hep_wall = 0.0;
  double osfork_wall = 0.0;
  for (const auto& r : records) {
    if (r.kib != 64) continue;
    if (std::string(r.model) == "hep-create") hep_wall = r.wall_ns;
    if (std::string(r.model) == "os-fork") osfork_wall = r.wall_ns;
  }
  if (hep_wall > 0.0 && osfork_wall > 0.0) {
    std::printf(
        "\nReal fork(2) spawn is %.1fx the thread-emulated hep-create "
        "spawn at 64 KiB private space.\n",
        osfork_wall / hep_wall);
  }

  std::printf("\nSimulated creation cost (np=%d, 1 MiB private/proc):\n\n",
              np);
  force::util::Table sim({"machine", "model", "sim creation", "equivalent "
                          "flops @1ns"});
  for (const auto& machine : force::bench::all_machines()) {
    const auto& spec = md::machine_spec(machine);
    // Bytes copied under the machine's model:
    const std::size_t per_proc = 1u << 20;
    std::size_t copied = 0;
    switch (spec.process_model) {
      case md::ProcessModelKind::kForkJoinCopy:
        copied = static_cast<std::size_t>(np) * per_proc;
        break;
      case md::ProcessModelKind::kForkSharedData:
        copied = static_cast<std::size_t>(np) * per_proc / 4;  // stack only
        break;
      case md::ProcessModelKind::kHepCreate:
        copied = 0;
        break;
      case md::ProcessModelKind::kOsFork:
        copied = 0;  // copy-on-write: nothing is copied eagerly at spawn
        break;
    }
    const auto model = md::CostModel(spec.costs);
    const double create = model.creation_time_ns(np, copied);
    sim.add_row({machine, md::process_model_name(spec.process_model),
                 ns_cell(create), force::util::Table::num(create)});
  }
  std::fputs(sim.render().c_str(), stdout);

  // Grain crossover: creating the force pays off once parallel work saved
  // exceeds the creation cost. work(np) = W/np + create(np); serial = W.
  // Crossover W* where parallel beats serial: W*(1 - 1/np) = create.
  std::printf(
      "\nWork needed before creating a force of %d beats serial "
      "execution:\n\n",
      np);
  force::util::Table grain({"machine", "sim create", "break-even work",
                            "at 1us/iter that is"});
  for (const auto& machine : force::bench::all_machines()) {
    const auto& spec = md::machine_spec(machine);
    std::size_t copied = spec.process_model == md::ProcessModelKind::kForkJoinCopy
                             ? static_cast<std::size_t>(np) << 20
                         : spec.process_model ==
                                 md::ProcessModelKind::kForkSharedData
                             ? static_cast<std::size_t>(np) << 18
                             : 0;
    const auto model = md::CostModel(spec.costs);
    const double create = model.creation_time_ns(np, copied);
    const double breakeven = create / (1.0 - 1.0 / np);
    // Convert simulated ns back to nominal iterations of 1us work.
    const double iters = breakeven / model.work_time_ns(1000.0);
    grain.add_row({machine, ns_cell(create), ns_cell(breakeven),
                   force::util::Table::num(iters) + " iters"});
  }
  std::fputs(grain.render().c_str(), stdout);
  std::printf(
      "\nE7 verdict: the fork machines need orders of magnitude more work "
      "to amortize creation than the HEP - why the Force encloses the "
      "whole program in one force instead of forking per parallel "
      "region.\n");

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    namespace fb = force::bench;
    std::string json =
        "{\n  " + fb::json_field("bench", fb::json_str("process_spawn"));
    json += ",\n  " +
            fb::json_field("np", fb::json_num(std::uint64_t(np)));
    if (hep_wall > 0.0 && osfork_wall > 0.0) {
      json += ",\n  " + fb::json_field("os_fork_over_hep_create",
                                       fb::json_num(osfork_wall / hep_wall));
    }
    json += ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
      const auto& r = records[i];
      json += fb::json_object(
          {fb::json_field("model", fb::json_str(r.model)),
           fb::json_field("private_kib",
                          fb::json_num(std::uint64_t(r.kib))),
           fb::json_field("bytes_copied", fb::json_num(r.bytes_copied)),
           fb::json_field("wall_ns", fb::json_num(r.wall_ns))},
          "    ");
      json += (i + 1 < records.size()) ? ",\n" : "\n";
    }
    json += "  ]\n}\n";
    if (fb::write_text_file(json_path, json)) {
      std::printf("\nWrote %s\n", json_path.c_str());
    }
  }
  return 0;
}
