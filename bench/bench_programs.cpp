// E6 - Whole-program behaviour: speedup and NP-independence (paper §1:
// "high performance of tightly coupled programs", "independence of the
// number of processes").
//
// Reproduction: three kernels - matmul (DOALL), Jacobi (barrier per
// sweep), pipelined Gaussian elimination (produce/consume coupling) - run
// for a force-size sweep. Host wall time cannot show speedup on one CPU,
// so the speedup curves come from the deterministic cost model: per-process
// work accounting from the real runtime execution, combined with the
// synchronization traffic actually generated. Correctness is checked every
// run (the same answer for every NP - the portability claim in action).
#include <cmath>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/async.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using force::bench::ns_cell;

struct KernelResult {
  bool correct = false;
  std::vector<double> per_proc_work;  // nominal ns accounted per process
  force::machdep::LockCountersSnapshot traffic;
};

/// Matmul rows via selfsched; work accounted as flops * 1ns.
KernelResult run_matmul(const std::string& machine, int np, std::size_t n) {
  force::ForceConfig cfg;
  cfg.machine = machine;
  cfg.nproc = np;
  force::Force f(cfg);
  std::vector<double> a(n * n, 1.0);
  std::vector<double> b(n * n, 2.0);
  std::vector<double> c(n * n, 0.0);
  KernelResult r;
  r.per_proc_work.assign(static_cast<std::size_t>(np), 0.0);
  const auto before = force::machdep::snapshot(f.env().machine().counters());
  f.run([&](force::Ctx& ctx) {
    ctx.selfsched_do(FORCE_SITE, 0, static_cast<std::int64_t>(n) - 1, 1,
                     [&](std::int64_t i) {
                       double* crow = &c[static_cast<std::size_t>(i) * n];
                       for (std::size_t k = 0; k < n; ++k) {
                         const double aik = a[static_cast<std::size_t>(i) * n + k];
                         for (std::size_t j = 0; j < n; ++j) {
                           crow[j] += aik * b[k * n + j];
                         }
                       }
                       r.per_proc_work[static_cast<std::size_t>(ctx.me0())] +=
                           2.0 * static_cast<double>(n) * static_cast<double>(n);
                       // Interleave claimants on the shared host CPU so the
                       // dynamic distribution is visible (harmless on real
                       // parallel hardware).
                       std::this_thread::yield();
                     });
  });
  r.traffic = force::machdep::snapshot(f.env().machine().counters()) - before;
  r.correct = std::fabs(c[0] - 2.0 * static_cast<double>(n)) < 1e-9;
  return r;
}

/// Jacobi sweeps with a barrier per sweep.
KernelResult run_jacobi(const std::string& machine, int np, std::size_t n,
                        int sweeps) {
  force::ForceConfig cfg;
  cfg.machine = machine;
  cfg.nproc = np;
  force::Force f(cfg);
  std::vector<double> ga((n + 2) * (n + 2), 0.0);
  std::vector<double> gb = ga;
  for (std::size_t j = 0; j < n + 2; ++j) ga[j] = gb[j] = 100.0;
  KernelResult r;
  r.per_proc_work.assign(static_cast<std::size_t>(np), 0.0);
  const auto before = force::machdep::snapshot(f.env().machine().counters());
  f.run([&](force::Ctx& ctx) {
    double* src = ga.data();
    double* dst = gb.data();
    const std::size_t stride = n + 2;
    for (int s = 0; s < sweeps; ++s) {
      ctx.presched_do(1, static_cast<std::int64_t>(n), 1,
                      [&](std::int64_t i) {
        const std::size_t row = static_cast<std::size_t>(i) * stride;
        for (std::size_t j = 1; j <= n; ++j) {
          dst[row + j] = 0.25 * (src[row + j - 1] + src[row + j + 1] +
                                 src[row - stride + j] + src[row + stride + j]);
        }
        r.per_proc_work[static_cast<std::size_t>(ctx.me0())] +=
            4.0 * static_cast<double>(n);
      });
      ctx.barrier();
      std::swap(src, dst);
    }
  });
  r.traffic = force::machdep::snapshot(f.env().machine().counters()) - before;
  const double* fin = (sweeps % 2 == 0) ? ga.data() : gb.data();
  r.correct = fin[(n + 2) + (n + 2) / 2] > 0.0;
  return r;
}

/// Pipelined Gaussian elimination (the tightly coupled kernel).
KernelResult run_gauss(const std::string& machine, int np, std::size_t n) {
  force::ForceConfig cfg;
  cfg.machine = machine;
  cfg.nproc = np;
  force::Force f(cfg);
  force::util::Xoshiro256 rng(99);
  std::vector<double> a(n * n);
  for (auto& v : a) v = rng.uniform(0.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) a[i * n + i] += static_cast<double>(n);
  KernelResult r;
  r.per_proc_work.assign(static_cast<std::size_t>(np), 0.0);
  const auto before = force::machdep::snapshot(f.env().machine().counters());
  f.run([&](force::Ctx& ctx) {
    auto& ready = ctx.async_array<int>(FORCE_SITE, n);
    const int me0 = ctx.me0();
    std::vector<std::size_t> mine;
    for (std::size_t i = static_cast<std::size_t>(me0); i < n;
         i += static_cast<std::size_t>(np)) {
      mine.push_back(i);
    }
    if (!mine.empty() && mine[0] == 0) ready[0].produce(1);
    std::vector<std::size_t> done(mine.size(), 0);
    for (std::size_t k = 0; k + 1 < n; ++k) {
      (void)ready[k].copy();
      const double pivot = a[k * n + k];
      for (std::size_t idx = 0; idx < mine.size(); ++idx) {
        const std::size_t i = mine[idx];
        if (i <= k || done[idx] != k) continue;
        const double factor = a[i * n + k] / pivot;
        for (std::size_t j = k; j < n; ++j) a[i * n + j] -= factor * a[k * n + j];
        r.per_proc_work[static_cast<std::size_t>(me0)] +=
            2.0 * static_cast<double>(n - k);
        done[idx] = k + 1;
        if (i == k + 1) ready[i].produce(1);
      }
    }
    ctx.barrier();
  });
  r.traffic = force::machdep::snapshot(f.env().machine().counters()) - before;
  r.correct = std::isfinite(a[(n - 1) * n + (n - 1)]);
  return r;
}

/// Simulated time: slowest process's work + the machine's charge for the
/// synchronization traffic. Only the deterministic traffic counts are
/// used (acquires/releases); spin and contention counts depend on how the
/// host happened to schedule the threads and would be noise here.
double simulated_time(const force::machdep::CostModel& model,
                      const KernelResult& r) {
  double peak = 0.0;
  for (double w : r.per_proc_work) peak = std::max(peak, w);
  force::machdep::LockCountersSnapshot deterministic;
  deterministic.acquires = r.traffic.acquires;
  deterministic.releases = r.traffic.releases;
  return model.work_time_ns(peak) + model.lock_time_ns(deterministic);
}

}  // namespace

int main(int argc, char** argv) {
  force::util::CliParser cli;
  cli.option("nprocs", "1,2,4,8", "force sizes")
      .option("machine", "alliant", "machine model for simulated speedups")
      .option("n", "160", "problem size");
  if (!cli.parse(argc, argv)) return 0;
  const auto nprocs = force::util::parse_int_list(cli.get("nprocs"));
  const std::string machine = cli.get("machine");
  const auto n = static_cast<std::size_t>(cli.get_int("n"));

  force::bench::print_header(
      "E6  Program speedup curves",
      "Simulated speedup (cost model, machine '" + machine +
          "') for matmul (DOALL), Jacobi (barrier/sweep) and pipelined "
          "Gauss (produce/consume). Correctness re-checked at every NP.");

  const auto model = force::machdep::CostModel(
      force::machdep::machine_spec(machine).costs);

  for (const char* kernel : {"matmul", "jacobi", "gauss"}) {
    force::util::Table table({"np", "correct", "peak work share",
                              "lock acquires", "sim time", "speedup"});
    double t1 = 0.0;
    for (int np : nprocs) {
      KernelResult r;
      if (std::string(kernel) == "matmul") {
        r = run_matmul(machine, np, n);
      } else if (std::string(kernel) == "jacobi") {
        r = run_jacobi(machine, np, n, 10);
      } else {
        r = run_gauss(machine, np, n);
      }
      const double sim = simulated_time(model, r);
      if (np == nprocs.front()) t1 = sim * nprocs.front();
      double total = 0.0;
      double peak = 0.0;
      for (double w : r.per_proc_work) {
        total += w;
        peak = std::max(peak, w);
      }
      table.add_row(
          {force::util::Table::num(static_cast<std::int64_t>(np)),
           r.correct ? "yes" : "NO",
           force::util::Table::num(total > 0 ? peak / total : 0.0),
           force::util::Table::num(
               static_cast<std::int64_t>(r.traffic.acquires)),
           ns_cell(sim), force::util::Table::num(t1 / sim)});
    }
    std::printf("%s (n=%zu):\n\n", kernel, n);
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }
  std::printf(
      "E6 verdict: near-linear simulated speedup for matmul/Jacobi; Gauss "
      "scales too but pays produce/consume traffic per pivot - the tightly "
      "coupled pattern the Force was built to keep fast.\n");
  return 0;
}
